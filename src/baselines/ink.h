// InK-style baseline runtime (Yildirim et al. — SenSys '18).
//
// InK is a reactive task kernel: tasks run inside a scheduler with event queues, and
// *all* task-shared state is kept consistent with double buffering — every task works
// on a fresh working copy of the shared variables it uses and commits by publishing
// the copy. Compared to Alpaca this protects all shared variables (not just WAR ones)
// at the price of copying more data per task and paying scheduler dispatch on every
// task boundary — which is why InK's overhead and footprint run higher in the paper's
// Table 6.
//
// Like Alpaca it has no I/O re-execution semantics and no visibility into DMA, so it
// exhibits the same wasted-I/O and DMA-inconsistency behaviour EaseIO fixes.

#ifndef EASEIO_BASELINES_INK_H_
#define EASEIO_BASELINES_INK_H_

#include <cstdint>
#include <map>
#include <vector>

#include "kernel/runtime.h"

namespace easeio::baseline {

class InkRuntime : public kernel::Runtime {
 public:
  InkRuntime() { SetNvHooks(/*translate_is_identity=*/false, /*has_write_hook=*/false); }

  const char* name() const override { return "InK"; }

  void Bind(sim::Device& dev, kernel::NvManager& nv) override;

  // Declares the task-shared variables of `task`: everything the task reads or writes
  // that outlives it. InK double-buffers all of them. DMA-touched buffers must not be
  // listed (the kernel cannot see DMA traffic).
  void SetTaskSharedVars(kernel::TaskId task, std::vector<kernel::NvSlotId> slots);

  // InK double-buffers every task-shared variable.
  void DeclareTaskShared(kernel::TaskId task, const std::vector<kernel::NvSlotId>& shared,
                         const std::vector<kernel::NvSlotId>& war) override {
    kernel::Runtime::DeclareTaskShared(task, shared, war);
    SetTaskSharedVars(task, shared);
  }

  void OnTaskBegin(kernel::TaskCtx& ctx) override;
  void OnTaskCommit(kernel::TaskCtx& ctx) override;

  uint32_t TranslateNv(kernel::TaskCtx& ctx, const kernel::NvSlot& slot,
                       uint32_t offset) override;

  uint32_t CodeSizeBytes() const override;

 private:
  struct SharedVar {
    kernel::NvSlotId slot;
    uint32_t working_addr;  // FRAM working copy (the task's write target)
  };

  const std::vector<SharedVar>* VarsFor(kernel::TaskId task) const;

  std::map<kernel::TaskId, std::vector<SharedVar>> shared_;
  uint32_t shared_var_count_ = 0;
};

}  // namespace easeio::baseline

#endif  // EASEIO_BASELINES_INK_H_
