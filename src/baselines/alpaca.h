// Alpaca-style baseline runtime (Maeng, Colin, Lucia — OOPSLA '17).
//
// Alpaca's compiler statically detects task-shared variables with write-after-read
// (WAR) dependencies and *privatizes* them: at task entry each such variable is copied
// into a private (non-volatile) copy, the task body operates on the copy, and a
// two-phase commit writes the copies back atomically when the task ends. Re-executing
// an interrupted task therefore re-reads unmodified originals — idempotent for CPU
// code.
//
// Two properties make it a faithful baseline for the paper's experiments:
//   * it has no notion of I/O re-execution semantics — every peripheral operation in a
//     re-executed task runs again (wasted work, duplicated sends, unsafe branches);
//   * DMA bypasses the CPU, so DMA-touched buffers are invisible to its WAR analysis —
//     privatization cannot protect them (the Figure 2b / Figure 12 bug).

#ifndef EASEIO_BASELINES_ALPACA_H_
#define EASEIO_BASELINES_ALPACA_H_

#include <cstdint>
#include <map>
#include <vector>

#include "kernel/runtime.h"

namespace easeio::baseline {

class AlpacaRuntime : public kernel::Runtime {
 public:
  AlpacaRuntime() { SetNvHooks(/*translate_is_identity=*/false, /*has_write_hook=*/false); }

  const char* name() const override { return "Alpaca"; }

  void Bind(sim::Device& dev, kernel::NvManager& nv) override;

  // Declares the WAR-dependent task-shared variables of `task` — the result of
  // Alpaca's static analysis, which application setup code supplies here. DMA-touched
  // buffers must not be listed: the real analysis cannot see them.
  void SetTaskWarVars(kernel::TaskId task, std::vector<kernel::NvSlotId> slots);

  // Alpaca's compiler privatizes exactly the WAR subset.
  void DeclareTaskShared(kernel::TaskId task, const std::vector<kernel::NvSlotId>& shared,
                         const std::vector<kernel::NvSlotId>& war) override {
    kernel::Runtime::DeclareTaskShared(task, shared, war);
    SetTaskWarVars(task, war);
  }

  void OnTaskBegin(kernel::TaskCtx& ctx) override;
  void OnTaskCommit(kernel::TaskCtx& ctx) override;

  uint32_t TranslateNv(kernel::TaskCtx& ctx, const kernel::NvSlot& slot,
                       uint32_t offset) override;

  // Modelled .text: task dispatch + privatization/commit code per WAR variable, scaled
  // to land near Alpaca's Table 6 measurements.
  uint32_t CodeSizeBytes() const override;

 private:
  struct PrivVar {
    kernel::NvSlotId slot;
    uint32_t priv_addr;  // FRAM private copy
  };

  const std::vector<PrivVar>* VarsFor(kernel::TaskId task) const;

  std::map<kernel::TaskId, std::vector<PrivVar>> war_;
  uint32_t war_var_count_ = 0;
};

}  // namespace easeio::baseline

#endif  // EASEIO_BASELINES_ALPACA_H_
