#include "baselines/samoyed.h"

namespace easeio::baseline {

void SamoyedRuntime::Bind(sim::Device& dev, kernel::NvManager& nv) {
  kernel::Runtime::Bind(dev, nv);
  // JIT checkpoint area (registers + stack snapshot) and the undo-log head.
  dev.mem().AllocFram("samoyed.checkpoint", 256, sim::AllocPurpose::kRuntimeMeta);
  dev.mem().AllocFram("samoyed.loghead", 4, sim::AllocPurpose::kRuntimeMeta);
}

void SamoyedRuntime::IoBlockBegin(kernel::TaskCtx& ctx, kernel::IoBlockId block) {
  (void)block;
  sim::Device::PhaseScope scope(ctx.dev(), sim::Phase::kOverhead);
  // Just-in-time checkpoint right before the atomic function: registers plus a small
  // stack snapshot into FRAM.
  ctx.dev().Spend(200, 200 * sim::kCpuEnergyPerCycleJ + 64 * sim::kFramWriteEnergyJ);
  ++open_blocks_;
}

void SamoyedRuntime::IoBlockEnd(kernel::TaskCtx& ctx, kernel::IoBlockId block) {
  (void)block;
  EASEIO_CHECK(open_blocks_ > 0, "atomic function end without begin");
  sim::Device::PhaseScope scope(ctx.dev(), sim::Phase::kOverhead);
  ctx.dev().Cpu(20);  // atomic commit: reset the log head
  --open_blocks_;
  if (open_blocks_ == 0) {
    log_.clear();
  }
}

uint32_t SamoyedRuntime::ShadowFor(const kernel::NvSlot& slot) {
  auto it = shadows_.find(slot.id);
  if (it != shadows_.end()) {
    return it->second;
  }
  const uint32_t addr = dev_->mem().AllocFram("samoyed.shadow." + slot.name, slot.size,
                                              sim::AllocPurpose::kRuntimeMeta);
  shadows_[slot.id] = addr;
  return addr;
}

void SamoyedRuntime::OnNvWrite(kernel::TaskCtx& ctx, const kernel::NvSlot& slot) {
  if (open_blocks_ == 0) {
    return;  // outside atomic functions Samoyed leaves NV writes alone
  }
  for (const LogEntry& e : log_) {
    if (e.slot == slot.id) {
      return;  // already logged this function
    }
  }
  sim::Device::PhaseScope scope(ctx.dev(), sim::Phase::kOverhead);
  const uint32_t shadow = ShadowFor(slot);
  const uint32_t words = (slot.size + 1) / 2;
  // Charge, then copy atomically (a torn log entry would be worse than none).
  ctx.dev().Spend(words * (sim::kFramReadCycles + sim::kFramWriteCycles),
                  words * (sim::kFramReadEnergyJ + sim::kFramWriteEnergyJ));
  ctx.dev().mem().Copy(shadow, slot.addr, slot.size);
  log_.push_back({slot.id, shadow, slot.size});
}

void SamoyedRuntime::Rollback() {
  // Charged as a lump: boot firmware walking the log.
  sim::Device::PhaseScope scope(*dev_, sim::Phase::kOverhead);
  uint32_t words = 0;
  for (const LogEntry& e : log_) {
    words += (e.size + 1) / 2;
  }
  dev_->Spend(words * (sim::kFramReadCycles + sim::kFramWriteCycles) + 30,
              words * (sim::kFramReadEnergyJ + sim::kFramWriteEnergyJ));
  for (const LogEntry& e : log_) {
    dev_->mem().Copy(nv_->slot(e.slot).addr, e.shadow_addr, e.size);
  }
  log_.clear();
  ++rollbacks_;
}

void SamoyedRuntime::OnReboot() {
  open_blocks_ = 0;
  if (!log_.empty()) {
    // The device died inside an atomic function: undo its partial NV writes before the
    // task re-executes. A failure mid-rollback re-runs it (shadows are untouched until
    // the log clears).
    Rollback();
  }
}

void SamoyedRuntime::OnTaskCommit(kernel::TaskCtx& ctx) {
  EASEIO_CHECK(open_blocks_ == 0, "task committed with an open atomic function");
  kernel::Runtime::OnTaskCommit(ctx);
}

bool SamoyedRuntime::AppendStateDigest(std::string& out) const {
  auto put32 = [&out](uint32_t v) { out.append(reinterpret_cast<const char*>(&v), 4); };
  put32(static_cast<uint32_t>(open_blocks_));
  put32(rollback_pending_ ? 1u : 0u);
  put32(static_cast<uint32_t>(log_.size()));
  for (const LogEntry& e : log_) {
    put32(e.slot);
    put32(e.shadow_addr);
    put32(e.size);
  }
  put32(static_cast<uint32_t>(shadows_.size()));
  for (const auto& [slot, addr] : shadows_) {  // std::map: deterministic order
    put32(slot);
    put32(addr);
  }
  return true;
}

std::shared_ptr<const void> SamoyedRuntime::SnapshotExtra() const {
  return std::make_shared<ExtraState>(
      ExtraState{open_blocks_, log_, shadows_, rollbacks_, rollback_pending_});
}

void SamoyedRuntime::RestoreExtra(const std::shared_ptr<const void>& extra) {
  EASEIO_CHECK(extra != nullptr, "Samoyed RestoreExtra needs its SnapshotExtra payload");
  const auto& state = *static_cast<const ExtraState*>(extra.get());
  open_blocks_ = state.open_blocks;
  log_ = state.log;
  shadows_ = state.shadows;
  rollbacks_ = state.rollbacks;
  rollback_pending_ = state.rollback_pending;
}

uint32_t SamoyedRuntime::CodeSizeBytes() const {
  // Checkpoint/restore core, atomic-function prologue/epilogue per block, undo-log
  // write barrier.
  return 1240 + 44 * static_cast<uint32_t>(blocks_.size()) +
         16 * static_cast<uint32_t>(io_sites_.size()) +
         24 * static_cast<uint32_t>(dma_sites_.size());
}

}  // namespace easeio::baseline
