#include "baselines/alpaca.h"

namespace easeio::baseline {

namespace {

// Atomic charged copy: spend the bus cost first, then move the bytes. A power failure
// during the spend leaves the destination untouched — this models Alpaca's commit log
// at block granularity (a torn commit is re-run from intact originals).
void ChargedAtomicCopy(sim::Device& dev, uint32_t dst, uint32_t src, uint32_t nbytes) {
  const uint32_t words = (nbytes + 1) / 2;
  dev.Spend(static_cast<uint64_t>(words) * (sim::kFramReadCycles + sim::kFramWriteCycles),
            static_cast<double>(words) * (sim::kFramReadEnergyJ + sim::kFramWriteEnergyJ));
  dev.mem().Copy(dst, src, nbytes);
}

}  // namespace

void AlpacaRuntime::Bind(sim::Device& dev, kernel::NvManager& nv) {
  kernel::Runtime::Bind(dev, nv);
  // Fixed kernel state: current-task pointer, commit list head, transition shim.
  dev.mem().AllocFram("alpaca.kernel", 32, sim::AllocPurpose::kRuntimeMeta);
}

void AlpacaRuntime::SetTaskWarVars(kernel::TaskId task, std::vector<kernel::NvSlotId> slots) {
  EASEIO_CHECK(dev_ != nullptr, "SetTaskWarVars before Bind");
  std::vector<PrivVar> vars;
  vars.reserve(slots.size());
  for (kernel::NvSlotId id : slots) {
    const kernel::NvSlot& s = nv_->slot(id);
    const uint32_t priv =
        dev_->mem().AllocFram("alpaca.priv." + s.name, s.size, sim::AllocPurpose::kRuntimeMeta);
    vars.push_back({id, priv});
    ++war_var_count_;
  }
  war_[task] = std::move(vars);
}

const std::vector<AlpacaRuntime::PrivVar>* AlpacaRuntime::VarsFor(kernel::TaskId task) const {
  auto it = war_.find(task);
  return it == war_.end() ? nullptr : &it->second;
}

void AlpacaRuntime::OnTaskBegin(kernel::TaskCtx& ctx) {
  sim::Device::PhaseScope scope(ctx.dev(), sim::Phase::kOverhead);
  ctx.dev().Cpu(20);  // task dispatch
  const auto* vars = VarsFor(ctx.current_task());
  if (vars == nullptr) {
    return;
  }
  // Privatize-in: originals are authoritative until commit, so re-copying them on every
  // attempt is idempotent.
  for (const PrivVar& v : *vars) {
    const kernel::NvSlot& s = nv_->slot(v.slot);
    ChargedAtomicCopy(ctx.dev(), v.priv_addr, s.addr, s.size);
  }
}

void AlpacaRuntime::OnTaskCommit(kernel::TaskCtx& ctx) {
  {
    sim::Device::PhaseScope scope(ctx.dev(), sim::Phase::kOverhead);
    ctx.dev().Cpu(15);  // commit-list walk
    const auto* vars = VarsFor(ctx.current_task());
    if (vars != nullptr) {
      // The write-back of all privatized variables is one atomic commit (Alpaca's
      // commit log): charge the full cost, then publish every copy.
      uint32_t words = 0;
      for (const PrivVar& v : *vars) {
        words += (nv_->slot(v.slot).size + 1) / 2;
      }
      ctx.dev().Spend(
          static_cast<uint64_t>(words) * (sim::kFramReadCycles + sim::kFramWriteCycles),
          static_cast<double>(words) * (sim::kFramReadEnergyJ + sim::kFramWriteEnergyJ));
      for (const PrivVar& v : *vars) {
        const kernel::NvSlot& s = nv_->slot(v.slot);
        ctx.dev().mem().Copy(s.addr, v.priv_addr, s.size);
      }
    }
  }
  kernel::Runtime::OnTaskCommit(ctx);
}

uint32_t AlpacaRuntime::TranslateNv(kernel::TaskCtx& ctx, const kernel::NvSlot& slot,
                                    uint32_t offset) {
  const auto* vars = VarsFor(ctx.current_task());
  if (vars != nullptr) {
    for (const PrivVar& v : *vars) {
      if (v.slot == slot.id) {
        return v.priv_addr + offset;
      }
    }
  }
  return slot.addr + offset;
}

uint32_t AlpacaRuntime::CodeSizeBytes() const {
  // Dispatch/commit core plus privatization code per WAR variable and a call per site.
  return 760 + 36 * war_var_count_ + 16 * static_cast<uint32_t>(io_sites_.size()) +
         24 * static_cast<uint32_t>(dma_sites_.size());
}

}  // namespace easeio::baseline
