#include "platform/hash.h"

#include <cstring>

namespace easeio::platform {

namespace {

constexpr uint32_t kRoundConstants[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

inline uint32_t Rotr(uint32_t x, int n) { return (x >> n) | (x << (32 - n)); }

}  // namespace

Sha256::Sha256()
    : state_{0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
             0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19} {}

void Sha256::Compress(const uint8_t block[64]) {
  uint32_t w[64];
  for (int i = 0; i < 16; ++i) {
    w[i] = static_cast<uint32_t>(block[4 * i]) << 24 |
           static_cast<uint32_t>(block[4 * i + 1]) << 16 |
           static_cast<uint32_t>(block[4 * i + 2]) << 8 |
           static_cast<uint32_t>(block[4 * i + 3]);
  }
  for (int i = 16; i < 64; ++i) {
    const uint32_t s0 = Rotr(w[i - 15], 7) ^ Rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
    const uint32_t s1 = Rotr(w[i - 2], 17) ^ Rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
    w[i] = w[i - 16] + s0 + w[i - 7] + s1;
  }

  uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3];
  uint32_t e = state_[4], f = state_[5], g = state_[6], h = state_[7];
  for (int i = 0; i < 64; ++i) {
    const uint32_t s1 = Rotr(e, 6) ^ Rotr(e, 11) ^ Rotr(e, 25);
    const uint32_t ch = (e & f) ^ (~e & g);
    const uint32_t temp1 = h + s1 + ch + kRoundConstants[i] + w[i];
    const uint32_t s0 = Rotr(a, 2) ^ Rotr(a, 13) ^ Rotr(a, 22);
    const uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
    const uint32_t temp2 = s0 + maj;
    h = g;
    g = f;
    f = e;
    e = d + temp1;
    d = c;
    c = b;
    b = a;
    a = temp1 + temp2;
  }
  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
  state_[4] += e;
  state_[5] += f;
  state_[6] += g;
  state_[7] += h;
}

void Sha256::Update(std::string_view data) {
  total_bytes_ += data.size();
  const uint8_t* p = reinterpret_cast<const uint8_t*>(data.data());
  size_t n = data.size();
  if (buffered_ > 0) {
    const size_t take = n < 64 - buffered_ ? n : 64 - buffered_;
    std::memcpy(buffer_ + buffered_, p, take);
    buffered_ += take;
    p += take;
    n -= take;
    if (buffered_ == 64) {
      Compress(buffer_);
      buffered_ = 0;
    }
  }
  while (n >= 64) {
    Compress(p);
    p += 64;
    n -= 64;
  }
  if (n > 0) {
    std::memcpy(buffer_, p, n);
    buffered_ = n;
  }
}

std::array<uint8_t, 32> Sha256::Digest() {
  const uint64_t bit_len = total_bytes_ * 8;
  const uint8_t pad = 0x80;
  Update(std::string_view(reinterpret_cast<const char*>(&pad), 1));
  const uint8_t zero = 0;
  while (buffered_ != 56) {
    Update(std::string_view(reinterpret_cast<const char*>(&zero), 1));
  }
  uint8_t len_be[8];
  for (int i = 0; i < 8; ++i) {
    len_be[i] = static_cast<uint8_t>(bit_len >> (56 - 8 * i));
  }
  Update(std::string_view(reinterpret_cast<const char*>(len_be), 8));

  std::array<uint8_t, 32> out;
  for (int i = 0; i < 8; ++i) {
    out[4 * i] = static_cast<uint8_t>(state_[i] >> 24);
    out[4 * i + 1] = static_cast<uint8_t>(state_[i] >> 16);
    out[4 * i + 2] = static_cast<uint8_t>(state_[i] >> 8);
    out[4 * i + 3] = static_cast<uint8_t>(state_[i]);
  }
  return out;
}

std::array<uint8_t, 32> Sha256Digest(std::string_view data) {
  Sha256 hasher;
  hasher.Update(data);
  return hasher.Digest();
}

std::string Sha256Hex(std::string_view data) {
  const std::array<uint8_t, 32> digest = Sha256Digest(data);
  static const char* kHex = "0123456789abcdef";
  std::string out;
  out.reserve(64);
  for (const uint8_t byte : digest) {
    out.push_back(kHex[byte >> 4]);
    out.push_back(kHex[byte & 0xF]);
  }
  return out;
}

}  // namespace easeio::platform
