// Deterministic parallel mapping over an index range.
//
// One pool implementation serves every sweep in the repository (the chk explorer's
// schedule trials, report::RunSweep's seed grid, and whatever comes next). Workers
// pull indices from a sharded atomic work queue and write results into
// index-addressed slots owned by the caller; the caller then folds the slots
// sequentially in index order. Because every per-index computation is self-contained
// and the merge order is fixed, the outcome — including floating-point aggregates —
// is byte-identical for any jobs count.

#ifndef EASEIO_PLATFORM_PARALLEL_H_
#define EASEIO_PLATFORM_PARALLEL_H_

#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <utility>
#include <vector>

namespace easeio::platform {

// Resolves a user-facing jobs count: 0 means std::thread::hardware_concurrency(),
// and the result is clamped to [1, max(n, 1)] so tiny inputs never spawn idle
// workers.
uint32_t ResolveJobs(uint32_t jobs, size_t n);

namespace internal {

// Runs worker(w) for w in [0, jobs) on dedicated threads and joins them all; jobs <= 1
// executes worker(0) inline on the calling thread. `worker` must be exception-free
// (the templates below capture exceptions before they reach the thread boundary).
void RunOnWorkers(uint32_t jobs, const std::function<void(uint32_t)>& worker);

// Captures at most one exception — the one raised at the lowest item index — for
// rethrow on the calling thread after all workers join.
class FirstException {
 public:
  // Records the current in-flight exception for item `index` if it is the
  // lowest-indexed one seen so far.
  void Capture(size_t index) {
    std::lock_guard<std::mutex> lock(mu_);
    if (index < index_) {
      index_ = index;
      exception_ = std::current_exception();
    }
  }

  // Rethrows the captured exception, if any.
  void Rethrow() const {
    if (exception_ != nullptr) {
      std::rethrow_exception(exception_);
    }
  }

 private:
  mutable std::mutex mu_;
  size_t index_ = SIZE_MAX;
  std::exception_ptr exception_;
};

}  // namespace internal

// Applies fn(state, i) to every index in [0, n), where `state` is built once per
// worker thread by make_state() — the isolated scratch (device stacks, RNGs, caches)
// that must never be shared across threads. fn must confine its writes to `state` and
// to caller-owned storage addressed by `i`. If an invocation throws, workers stop
// pulling new indices and the lowest-indexed captured exception is rethrown on the
// calling thread after all workers join.
template <typename StateFactory, typename Fn>
void ParallelForWithState(uint32_t jobs, size_t n, StateFactory&& make_state, Fn&& fn) {
  jobs = ResolveJobs(jobs, n);
  std::atomic<size_t> next{0};
  std::atomic<bool> abort{false};
  internal::FirstException error;
  internal::RunOnWorkers(jobs, [&](uint32_t) {
    auto state = make_state();
    for (size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
      if (abort.load(std::memory_order_relaxed)) {
        return;
      }
      try {
        fn(state, i);
      } catch (...) {
        error.Capture(i);
        abort.store(true, std::memory_order_relaxed);
      }
    }
  });
  error.Rethrow();
}

// Stateless variant: fn(i) for every index in [0, n).
template <typename Fn>
void ParallelFor(uint32_t jobs, size_t n, Fn&& fn) {
  ParallelForWithState(
      jobs, n, [] { return 0; }, [&fn](int /*state*/, size_t i) { fn(i); });
}

// Deterministic parallel map: returns {fn(0), fn(1), ..., fn(n-1)} in index order,
// computed by `jobs` workers. R must be default-constructible (slots are allocated up
// front so workers never contend on the container).
template <typename R, typename Fn>
std::vector<R> ParallelMap(uint32_t jobs, size_t n, Fn&& fn) {
  std::vector<R> slots(n);
  ParallelFor(jobs, n, [&](size_t i) { slots[i] = fn(i); });
  return slots;
}

}  // namespace easeio::platform

#endif  // EASEIO_PLATFORM_PARALLEL_H_
