#include "platform/parallel.h"

#include <algorithm>
#include <thread>

namespace easeio::platform {

uint32_t ResolveJobs(uint32_t jobs, size_t n) {
  if (jobs == 0) {
    jobs = std::max(1u, std::thread::hardware_concurrency());
  }
  if (n < jobs) {
    jobs = static_cast<uint32_t>(std::max<size_t>(n, 1));
  }
  return jobs;
}

namespace internal {

void RunOnWorkers(uint32_t jobs, const std::function<void(uint32_t)>& worker) {
  if (jobs <= 1) {
    worker(0);
    return;
  }
  std::vector<std::thread> pool;
  pool.reserve(jobs);
  for (uint32_t w = 0; w < jobs; ++w) {
    pool.emplace_back([&worker, w] { worker(w); });
  }
  for (std::thread& t : pool) {
    t.join();
  }
}

}  // namespace internal
}  // namespace easeio::platform
