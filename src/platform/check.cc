#include "platform/check.h"

#include <cstdio>
#include <cstdlib>

namespace easeio {

void CheckFailed(const char* file, int line, const char* condition, std::string_view message) {
  std::fprintf(stderr, "EASEIO_CHECK failed at %s:%d: %s\n  %.*s\n", file, line, condition,
               static_cast<int>(message.size()), message.data());
  std::abort();
}

}  // namespace easeio
