// Lightweight invariant checking for the EaseIO codebase.
//
// EASEIO_CHECK is always on (release builds included): the simulator's value comes
// from catching modelling bugs, so the cost of a predictable branch is acceptable.
// Violations abort with a source location and message; they indicate a programming
// error in this library or its caller, never a recoverable runtime condition.

#ifndef EASEIO_PLATFORM_CHECK_H_
#define EASEIO_PLATFORM_CHECK_H_

#include <cstdint>
#include <string_view>

namespace easeio {

// Prints a fatal-check diagnostic and aborts. Used by the EASEIO_CHECK macro; call
// directly only when a custom condition string is needed.
[[noreturn]] void CheckFailed(const char* file, int line, const char* condition,
                              std::string_view message);

}  // namespace easeio

// Aborts with a diagnostic when `cond` is false. `msg` is a std::string_view-convertible
// description of the violated invariant.
#define EASEIO_CHECK(cond, msg)                                 \
  do {                                                          \
    if (!(cond)) {                                              \
      ::easeio::CheckFailed(__FILE__, __LINE__, #cond, (msg));  \
    }                                                           \
  } while (false)

#endif  // EASEIO_PLATFORM_CHECK_H_
