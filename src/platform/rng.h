// Deterministic pseudo-random number generation.
//
// All stochastic behaviour in the simulator (power-failure schedules, sensor value
// streams, harvested-power jitter) flows from Xorshift64Star instances seeded by the
// experiment harness. This keeps every run reproducible from a single integer seed —
// the paper's 1000-run sweeps use seeds 0..999.

#ifndef EASEIO_PLATFORM_RNG_H_
#define EASEIO_PLATFORM_RNG_H_

#include <cstdint>

#include "platform/check.h"

namespace easeio {

// xorshift64* generator (Vigna, 2016). Small state, good statistical quality for
// simulation workloads, and — unlike std::mt19937 — guaranteed identical output across
// standard libraries, which matters for golden-value tests.
class Xorshift64Star {
 public:
  // Seeds the generator. A zero seed is remapped to a fixed non-zero constant because
  // xorshift has an all-zero fixed point.
  explicit Xorshift64Star(uint64_t seed) : state_(seed != 0 ? seed : 0x9E3779B97F4A7C15ull) {}

  // Returns the next 64 raw bits.
  uint64_t Next() {
    state_ ^= state_ >> 12;
    state_ ^= state_ << 25;
    state_ ^= state_ >> 27;
    return state_ * 0x2545F4914F6CDD1Dull;
  }

  // Returns a double uniformly distributed in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);  // 2^53
  }

  // Returns an integer uniformly distributed in [lo, hi] (inclusive).
  uint64_t NextInRange(uint64_t lo, uint64_t hi) {
    EASEIO_CHECK(lo <= hi, "NextInRange requires lo <= hi");
    const uint64_t span = hi - lo + 1;
    return lo + (span == 0 ? Next() : Next() % span);
  }

  // Returns a double uniformly distributed in [lo, hi).
  double NextDoubleInRange(double lo, double hi) {
    EASEIO_CHECK(lo <= hi, "NextDoubleInRange requires lo <= hi");
    return lo + NextDouble() * (hi - lo);
  }

 private:
  uint64_t state_;
};

// Derives a decorrelated child seed from a parent seed and a stream index, so that
// independent subsystems (failure schedule vs. sensor streams) never share a sequence.
inline uint64_t DeriveSeed(uint64_t seed, uint64_t stream) {
  uint64_t z = seed + 0x9E3779B97F4A7C15ull * (stream + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace easeio

#endif  // EASEIO_PLATFORM_RNG_H_
