// Shared content hashing: SHA-256 plus a fast 64-bit mix.
//
// SHA-256 serves two collision-sensitive consumers: the easeiod result cache
// (entries are addressed by the hash of a job's canonical key, and a lint job hashes
// client-supplied program text — the hash must be collision-resistant across
// adversarial inputs and stable forever, or on-disk caches poison/invalidate) and the
// chk state-dedup table (a dedup entry substitutes a trial's verdict, so a silent
// collision would forge one). Self-contained FIPS 180-4 implementation; no external
// dependency. The 64-bit mix is the opposite trade: a few ns per call for the dedup
// table's hot probe, where a false match costs only a SHA-256 + memcmp to reject.

#ifndef EASEIO_PLATFORM_HASH_H_
#define EASEIO_PLATFORM_HASH_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace easeio::platform {

// Incremental SHA-256.
class Sha256 {
 public:
  Sha256();
  void Update(std::string_view data);
  // Finalizes and returns the 32-byte digest. The object must not be reused after.
  std::array<uint8_t, 32> Digest();

 private:
  void Compress(const uint8_t block[64]);

  std::array<uint32_t, 8> state_;
  uint8_t buffer_[64];
  size_t buffered_ = 0;
  uint64_t total_bytes_ = 0;
};

// One-shot convenience: lowercase hex digest of `data`.
std::string Sha256Hex(std::string_view data);

// One-shot convenience: the 32-byte digest of `data`.
std::array<uint8_t, 32> Sha256Digest(std::string_view data);

// Finalizer-strength 64-bit bit mixer (splitmix64's): every input bit affects every
// output bit. Used to turn cheap word sums into table probes.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Fast non-cryptographic 64-bit hash of a byte range (FNV-1a folded through Mix64).
// Strictly a probe: collisions are expected to be resolved by the caller with a real
// comparison. `seed` chains ranges.
inline uint64_t HashBytes64(const void* data, size_t n, uint64_t seed = 0) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint64_t h = seed ^ 0xcbf29ce484222325ULL;
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    uint64_t w;
    __builtin_memcpy(&w, p + i, 8);
    h = (h ^ w) * 0x100000001b3ULL;
  }
  uint64_t tail = 0;
  for (size_t k = 0; i < n; ++i, ++k) {
    tail |= static_cast<uint64_t>(p[i]) << (8 * k);
  }
  h = (h ^ tail ^ n) * 0x100000001b3ULL;
  return Mix64(h);
}

}  // namespace easeio::platform

#endif  // EASEIO_PLATFORM_HASH_H_
