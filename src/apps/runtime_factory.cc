#include "apps/runtime_factory.h"

#include "baselines/alpaca.h"
#include "baselines/ink.h"
#include "baselines/samoyed.h"
#include "core/easeio_runtime.h"
#include "platform/check.h"

namespace easeio::apps {

const char* ToString(RuntimeKind kind) {
  switch (kind) {
    case RuntimeKind::kAlpaca:
      return "Alpaca";
    case RuntimeKind::kInk:
      return "InK";
    case RuntimeKind::kSamoyed:
      return "Samoyed";
    case RuntimeKind::kEaseio:
      return "EaseIO";
    case RuntimeKind::kEaseioOp:
      return "EaseIO/Op.";
  }
  return "?";
}

std::unique_ptr<kernel::Runtime> MakeRuntime(RuntimeKind kind,
                                             const rt::EaseioConfig& easeio_config) {
  switch (kind) {
    case RuntimeKind::kAlpaca:
      return std::make_unique<baseline::AlpacaRuntime>();
    case RuntimeKind::kInk:
      return std::make_unique<baseline::InkRuntime>();
    case RuntimeKind::kSamoyed:
      return std::make_unique<baseline::SamoyedRuntime>();
    case RuntimeKind::kEaseio:
    case RuntimeKind::kEaseioOp:
      return std::make_unique<rt::EaseioRuntime>(easeio_config);
  }
  EASEIO_CHECK(false, "unknown runtime kind");
}

}  // namespace easeio::apps
