// Application registry: one enum naming every workload, a dispatching builder, and the
// structural traits downstream tooling (the failure-schedule explorer, the experiment
// harness) keys off. Lives in apps so layers below report can enumerate workloads.

#ifndef EASEIO_APPS_REGISTRY_H_
#define EASEIO_APPS_REGISTRY_H_

#include "apps/apps.h"

namespace easeio::apps {

enum class AppKind { kDma, kTemp, kLea, kFir, kWeather, kBranch };

inline constexpr AppKind kAllApps[] = {AppKind::kDma,     AppKind::kTemp, AppKind::kLea,
                                       AppKind::kFir,     AppKind::kWeather,
                                       AppKind::kBranch};

// The paper's three unitask microbenchmarks (Table 4 / Table 5).
inline constexpr AppKind kUnitaskApps[] = {AppKind::kDma, AppKind::kTemp, AppKind::kLea};

const char* ToString(AppKind kind);

// Builds the named application against an already-bound runtime.
AppHandle BuildApp(AppKind kind, sim::Device& dev, kernel::Runtime& rt, kernel::NvManager& nv,
                   const AppOptions& options = {});

// Structural facts the invariant checker needs about a workload.
struct AppTraits {
  // The workload computes a pure function of constant inputs: its collected output
  // must bit-match the continuous-power golden run under any failure schedule. False
  // for sensor-driven apps, whose readings legitimately drift with (wall) time.
  bool deterministic = false;
  // Every Single NV->NV DMA copies from a buffer no task ever overwrites, so after a
  // completed run the destination must mirror the source byte-for-byte.
  bool dma_mirror = false;
  // The workload's verdicts are a function of durable state alone: control flow never
  // branches on a sensed value, and the consistency predicate is value-agnostic (it
  // checks structure/progress, not which reading was stored). This is what makes two
  // failure instants with identical post-reboot durable state interchangeable, so the
  // explorer's state-dedup and partial-order reduction only apply where it holds.
  // False for branch, whose sensed temperature steers which task chain runs.
  bool prune_safe = false;
};

AppTraits TraitsFor(AppKind kind);

}  // namespace easeio::apps

#endif  // EASEIO_APPS_REGISTRY_H_
