// The paper's evaluation applications (Table 3), written once against the
// runtime-agnostic kernel API. Building an app registers its tasks, I/O sites, blocks,
// DMA sites, and compiler-analysis facts with whatever runtime is active, so the same
// application runs unmodified on Alpaca, InK, and EaseIO — the paper's methodology.
//
//   * DMA   — uni-task, Single semantics: one large FRAM->FRAM block copy + checksum.
//   * Temp  — uni-task, Timely semantics: a loop of temperature samples with a 10 ms
//             freshness window (the artifact's Timely_Temp benchmark).
//   * LEA   — uni-task, Always semantics: staged FIR on the accelerator.
//   * FIR   — multi-task: 3 DMA + looped LEA with a WAR dependency through the shared
//             input/output buffer (the Figure 12 correctness workload).
//   * Weather — 11 tasks: sense (I/O block) -> capture -> 5-layer DNN -> send
//             (the Figure 9 / Table 5 workload).
//   * Branch — the Figure 2c unsafe-branch micro-app (used by tests and examples).

#ifndef EASEIO_APPS_APPS_H_
#define EASEIO_APPS_APPS_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "kernel/engine.h"
#include "kernel/runtime.h"

namespace easeio::apps {

struct AppOptions {
  // FIR: annotate the constant-coefficient DMA with Exclude (the "EaseIO /Op."
  // configuration). Ignored by baselines.
  bool exclude_const_dma = false;
  // Weather: route every DNN layer through one shared buffer (true) or ping-pong
  // between two buffers (false) — Table 5's single/double buffer configurations.
  bool single_buffer = true;
  // Weather/DMA: number of back-to-back jobs. The harvester experiment (Figure 13)
  // runs several so brown-outs land at diverse points.
  uint32_t jobs = 1;
};

// A built application, bound to one device + runtime pair.
struct AppHandle {
  kernel::TaskGraph graph;
  kernel::TaskId entry = 0;

  // Reads the application's declared output state (raw, uncharged) for correctness
  // comparison across runs.
  std::function<std::vector<uint8_t>(sim::Device&)> collect_output;

  // True when the finished run is internally consistent (e.g. the stored DNN result
  // matches a host-side reference evaluation of the stored image). Apps without a
  // stronger invariant fall back to `true`.
  std::function<bool(sim::Device&)> check_consistent;

  // Table 3 bookkeeping.
  uint32_t num_tasks = 0;
  uint32_t num_io_funcs = 0;

  // Keeps the lambdas' shared state alive.
  std::shared_ptr<void> state;
};

// Builders. Each allocates NV state on `dev`, registers everything with `rt` (which
// must already be bound to `dev` and `nv`), and returns the runnable handle.
AppHandle BuildDmaApp(sim::Device& dev, kernel::Runtime& rt, kernel::NvManager& nv,
                      const AppOptions& options = {});
AppHandle BuildTempApp(sim::Device& dev, kernel::Runtime& rt, kernel::NvManager& nv);
AppHandle BuildLeaApp(sim::Device& dev, kernel::Runtime& rt, kernel::NvManager& nv);
AppHandle BuildFirApp(sim::Device& dev, kernel::Runtime& rt, kernel::NvManager& nv,
                      const AppOptions& options = {});
AppHandle BuildWeatherApp(sim::Device& dev, kernel::Runtime& rt, kernel::NvManager& nv,
                          const AppOptions& options = {});
AppHandle BuildBranchApp(sim::Device& dev, kernel::Runtime& rt, kernel::NvManager& nv);

// Registry used by the benchmark harnesses.
using AppBuilder = AppHandle (*)(sim::Device&, kernel::Runtime&, kernel::NvManager&);

}  // namespace easeio::apps

#endif  // EASEIO_APPS_APPS_H_
