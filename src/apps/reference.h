// Host-side reference implementations of the accelerator math (uncharged, operating on
// plain vectors). The consistency checkers compare what an application left in
// simulated NVM against these golden computations — bit-exact with the LEA's Q15
// saturating arithmetic.

#ifndef EASEIO_APPS_REFERENCE_H_
#define EASEIO_APPS_REFERENCE_H_

#include <algorithm>
#include <cstdint>
#include <vector>

namespace easeio::apps::ref {

inline int16_t Saturate(int32_t v) {
  return static_cast<int16_t>(std::clamp<int32_t>(v, INT16_MIN, INT16_MAX));
}

inline std::vector<int16_t> Fir(const std::vector<int16_t>& src,
                                const std::vector<int16_t>& coef, uint32_t out_len) {
  std::vector<int16_t> out(out_len);
  for (uint32_t i = 0; i < out_len; ++i) {
    int32_t acc = 0;
    for (uint32_t k = 0; k < coef.size(); ++k) {
      acc += static_cast<int32_t>(coef[k]) * static_cast<int32_t>(src[i + k]);
    }
    out[i] = Saturate(acc >> 15);
  }
  return out;
}

inline std::vector<int16_t> Conv2dValid(const std::vector<int16_t>& src,
                                        const std::vector<int16_t>& kernel, uint32_t in_h,
                                        uint32_t in_w, uint32_t k) {
  const uint32_t out_h = in_h - k + 1;
  const uint32_t out_w = in_w - k + 1;
  std::vector<int16_t> out(out_h * out_w);
  for (uint32_t y = 0; y < out_h; ++y) {
    for (uint32_t x = 0; x < out_w; ++x) {
      int32_t acc = 0;
      for (uint32_t ky = 0; ky < k; ++ky) {
        for (uint32_t kx = 0; kx < k; ++kx) {
          acc += static_cast<int32_t>(kernel[ky * k + kx]) *
                 static_cast<int32_t>(src[(y + ky) * in_w + (x + kx)]);
        }
      }
      out[y * out_w + x] = Saturate(acc >> 15);
    }
  }
  return out;
}

inline std::vector<int16_t> Relu(std::vector<int16_t> v) {
  for (int16_t& x : v) {
    x = std::max<int16_t>(x, 0);
  }
  return v;
}

inline std::vector<int16_t> FullyConnected(const std::vector<int16_t>& src,
                                           const std::vector<int16_t>& weights,
                                           uint32_t out_len) {
  const uint32_t in_len = static_cast<uint32_t>(src.size());
  std::vector<int16_t> out(out_len);
  for (uint32_t o = 0; o < out_len; ++o) {
    int32_t acc = 0;
    for (uint32_t i = 0; i < in_len; ++i) {
      acc += static_cast<int32_t>(weights[o * in_len + i]) * static_cast<int32_t>(src[i]);
    }
    out[o] = Saturate(acc >> 15);
  }
  return out;
}

inline uint32_t ArgMax(const std::vector<int16_t>& v) {
  uint32_t best = 0;
  for (uint32_t i = 1; i < v.size(); ++i) {
    if (v[i] > v[best]) {
      best = i;
    }
  }
  return best;
}

}  // namespace easeio::apps::ref

#endif  // EASEIO_APPS_REFERENCE_H_
