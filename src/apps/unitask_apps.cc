// Phase-1 applications (Section 5.3): one application per re-execution semantic,
// introduced in Samoyed and re-used by the paper.

#include <cstring>
#include <memory>

#include "apps/apps.h"
#include "core/easeio_runtime.h"

namespace easeio::apps {

namespace k = easeio::kernel;

namespace {

// Reads `bytes` raw bytes starting at `addr`.
std::vector<uint8_t> ReadRaw(sim::Device& dev, uint32_t addr, uint32_t bytes) {
  std::vector<uint8_t> out(bytes);
  dev.mem().ReadBlock(addr, bytes, out.data());
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------------------
// DMA application — Single semantics. One 8 KB FRAM->FRAM block copy followed by a CPU
// checksum of the destination. Task-based baselines re-run the (expensive) copy on
// every power failure; EaseIO's runtime classifies it as Single and skips it once done.
// ---------------------------------------------------------------------------------------

namespace {

struct DmaAppState {
  static constexpr uint32_t kWords = 4096;
  k::NvSlotId src = k::kNoSlot;
  k::NvSlotId dst = k::kNoSlot;
  k::NvSlotId sum = k::kNoSlot;
  k::NvSlotId done = k::kNoSlot;
  k::DmaSiteId dma = k::kNoSite;
  k::TaskId t_init = 0, t_work = 0, t_report = 0;
};

}  // namespace

AppHandle BuildDmaApp(sim::Device& dev, kernel::Runtime& rt, kernel::NvManager& nv,
                      const AppOptions& options) {
  (void)dev;
  auto st = std::make_shared<DmaAppState>();
  st->src = nv.Define("dma.src", DmaAppState::kWords * 2);
  st->dst = nv.Define("dma.dst", DmaAppState::kWords * 2);
  st->sum = nv.Define("dma.sum", 4);
  st->done = nv.Define("dma.done", 2);
  const k::NvSlotId job_count = nv.Define("dma.jobs", 2);

  AppHandle app;
  st->t_init = app.graph.Add("init", [st](k::TaskCtx& ctx) {
    // Deterministic source pattern: every 4th word carries data.
    for (uint32_t i = 0; i < DmaAppState::kWords; i += 4) {
      ctx.NvStore16(st->src, static_cast<uint16_t>(i * 7 + 13), 2 * i);
    }
    ctx.Cpu(50);
    return st->t_work;
  });
  st->t_work = app.graph.Add("copy_and_sum", [st](k::TaskCtx& ctx) {
    ctx.Cpu(40);  // channel setup
    const k::NvSlot& src = ctx.nv().slot(st->src);
    const k::NvSlot& dst = ctx.nv().slot(st->dst);
    ctx.DmaCopy(st->dma, dst.addr, src.addr, DmaAppState::kWords * 2);
    // Sample-checksum the copied block (every other word keeps the task comfortably
    // inside one energy cycle — a full scan would flirt with non-termination under
    // runtimes that re-run the copy every attempt).
    uint32_t sum = 0;
    for (uint32_t i = 0; i < DmaAppState::kWords; i += 2) {
      sum += ctx.NvLoad16(st->dst, 2 * i);
    }
    ctx.Cpu(DmaAppState::kWords / 2);  // loop arithmetic
    ctx.NvStore32(st->sum, sum);
    return st->t_report;
  });
  const uint32_t jobs = options.jobs == 0 ? 1 : options.jobs;
  st->t_report = app.graph.Add("report", [st, job_count, jobs](k::TaskCtx& ctx) {
    ctx.Cpu(30);
    const uint16_t completed = static_cast<uint16_t>(ctx.NvLoad16(job_count) + 1);
    ctx.NvStore16(job_count, completed);
    if (completed < jobs) {
      return st->t_work;  // next copy/checksum job
    }
    ctx.NvStore16(st->done, 1);
    return k::kTaskDone;
  });
  app.entry = st->t_init;

  st->dma = rt.RegisterDmaSite({st->t_work, "dma.copy", /*exclude=*/false, k::kNoSite});
  rt.DeclareTaskShared(st->t_work, {st->sum}, {});
  rt.DeclareTaskRegions(st->t_work, {{}, {}});
  // The job counter is read-modify-write across attempts: privatize it everywhere.
  rt.DeclareTaskShared(st->t_report, {job_count}, {job_count});
  rt.DeclareTaskRegions(st->t_report, {{job_count}});

  const uint32_t src_addr = nv.slot(st->src).addr;
  const uint32_t dst_addr = nv.slot(st->dst).addr;
  const uint32_t sum_addr = nv.slot(st->sum).addr;
  const uint32_t jobs_addr = nv.slot(job_count).addr;
  app.collect_output = [dst_addr, sum_addr](sim::Device& d) {
    std::vector<uint8_t> out(DmaAppState::kWords * 2 + 4);
    d.mem().ReadBlock(dst_addr, DmaAppState::kWords * 2, out.data());
    d.mem().ReadBlock(sum_addr, 4, out.data() + DmaAppState::kWords * 2);
    return out;
  };
  app.check_consistent = [src_addr, dst_addr, sum_addr, jobs_addr, jobs](sim::Device& d) {
    if (d.mem().Read16(jobs_addr) != jobs) {
      return false;  // a double-incremented job counter skipped work
    }
    // Zero-copy views: the 8 KB buffers are compared and checksummed in place rather
    // than staged through per-trial heap copies.
    const uint8_t* src = d.mem().PeekBlock(src_addr, DmaAppState::kWords * 2);
    const uint8_t* dst = d.mem().PeekBlock(dst_addr, DmaAppState::kWords * 2);
    if (std::memcmp(src, dst, DmaAppState::kWords * 2) != 0) {
      return false;
    }
    uint32_t expect = 0;
    for (uint32_t i = 0; i < DmaAppState::kWords; i += 2) {
      expect += static_cast<uint16_t>(dst[2 * i] | (dst[2 * i + 1] << 8));
    }
    return d.mem().Read32(sum_addr) == expect;
  };
  app.num_tasks = 3;
  app.num_io_funcs = 1;
  app.state = st;
  return app;
}

// ---------------------------------------------------------------------------------------
// Temperature application — Timely semantics. The artifact's Timely_Temp benchmark: a
// loop of sensor samples, each valid for 10 ms. After a reboot EaseIO re-reads only the
// samples whose freshness window expired; baselines re-read everything.
// ---------------------------------------------------------------------------------------

namespace {

struct TempAppState {
  static constexpr uint32_t kSamples = 40;
  static constexpr uint64_t kWindowUs = 10'000;
  k::NvSlotId readings = k::kNoSlot;
  k::NvSlotId avg = k::kNoSlot;
  k::NvSlotId done = k::kNoSlot;
  k::IoSiteId temp = k::kNoSite;
  k::TaskId t_init = 0, t_sense = 0, t_report = 0;
};

}  // namespace

AppHandle BuildTempApp(sim::Device& dev, kernel::Runtime& rt, kernel::NvManager& nv) {
  (void)dev;
  auto st = std::make_shared<TempAppState>();
  st->readings = nv.Define("temp.readings", TempAppState::kSamples * 2);
  st->avg = nv.Define("temp.avg", 2);
  st->done = nv.Define("temp.done", 2);

  AppHandle app;
  st->t_init = app.graph.Add("init", [st](k::TaskCtx& ctx) {
    ctx.Cpu(80);
    return st->t_sense;
  });
  st->t_sense = app.graph.Add("sense", [st](k::TaskCtx& ctx) {
    int32_t acc = 0;
    for (uint32_t i = 0; i < TempAppState::kSamples; ++i) {
      const int16_t v = ctx.CallIo(st->temp, i, [](k::TaskCtx& c) {
        return c.dev().temp().Read(c.dev());
      });
      ctx.NvStoreI16(st->readings, v, 2 * i);
      acc += v;
      ctx.Cpu(3);
    }
    ctx.NvStoreI16(st->avg, static_cast<int16_t>(acc / static_cast<int32_t>(
                                                           TempAppState::kSamples)));
    return st->t_report;
  });
  st->t_report = app.graph.Add("report", [st](k::TaskCtx& ctx) {
    ctx.Cpu(30);
    ctx.NvStore16(st->done, 1);
    return k::kTaskDone;
  });
  app.entry = st->t_init;

  st->temp = rt.RegisterIoSite({st->t_sense, "temp.read", TempAppState::kSamples,
                                k::IoSemantic::kTimely, TempAppState::kWindowUs});
  rt.DeclareTaskShared(st->t_sense, {st->avg}, {});
  rt.DeclareTaskRegions(st->t_sense, {{}});

  const uint32_t readings_addr = nv.slot(st->readings).addr;
  const uint32_t avg_addr = nv.slot(st->avg).addr;
  app.collect_output = [readings_addr, avg_addr](sim::Device& d) {
    auto out = ReadRaw(d, readings_addr, TempAppState::kSamples * 2);
    auto a = ReadRaw(d, avg_addr, 2);
    out.insert(out.end(), a.begin(), a.end());
    return out;
  };
  app.check_consistent = [readings_addr, avg_addr](sim::Device& d) {
    int32_t acc = 0;
    for (uint32_t i = 0; i < TempAppState::kSamples; ++i) {
      acc += static_cast<int16_t>(d.mem().Read16(readings_addr + 2 * i));
    }
    const int16_t expect = static_cast<int16_t>(acc / static_cast<int32_t>(
                                                          TempAppState::kSamples));
    return static_cast<int16_t>(d.mem().Read16(avg_addr)) == expect;
  };
  app.num_tasks = 3;
  app.num_io_funcs = 1;
  app.state = st;
  return app;
}

// ---------------------------------------------------------------------------------------
// LEA application — Always semantics. A staged FIR on the accelerator: the operation's
// inputs live in (volatile) LEA SRAM, so it genuinely must re-run after every failure.
// EaseIO has no advantage here and pays a small flag overhead — the honest case in
// Figure 7c.
// ---------------------------------------------------------------------------------------

namespace {

struct LeaAppState {
  static constexpr uint32_t kOut = 1024;
  static constexpr uint32_t kTaps = 16;
  static constexpr uint32_t kIn = kOut + kTaps - 1;
  k::NvSlotId signal = k::kNoSlot;
  k::NvSlotId coef = k::kNoSlot;
  k::NvSlotId result = k::kNoSlot;
  k::NvSlotId done = k::kNoSlot;
  uint32_t sram_in = 0, sram_coef = 0, sram_out = 0;
  k::IoSiteId lea = k::kNoSite;
  k::TaskId t_init = 0, t_work = 0, t_report = 0;
};

}  // namespace

AppHandle BuildLeaApp(sim::Device& dev, kernel::Runtime& rt, kernel::NvManager& nv) {
  auto st = std::make_shared<LeaAppState>();
  st->signal = nv.Define("lea.signal", LeaAppState::kIn * 2);
  st->coef = nv.Define("lea.coef", LeaAppState::kTaps * 2);
  st->result = nv.Define("lea.result", LeaAppState::kOut * 2);
  st->done = nv.Define("lea.done", 2);
  st->sram_in = dev.mem().AllocSram("lea.sram.in", LeaAppState::kIn * 2);
  st->sram_coef = dev.mem().AllocSram("lea.sram.coef", LeaAppState::kTaps * 2);
  st->sram_out = dev.mem().AllocSram("lea.sram.out", LeaAppState::kOut * 2);

  AppHandle app;
  st->t_init = app.graph.Add("init", [st](k::TaskCtx& ctx) {
    for (uint32_t i = 0; i < LeaAppState::kIn; i += 4) {
      ctx.NvStoreI16(st->signal, static_cast<int16_t>((i % 97) * 23 - 800), 2 * i);
    }
    for (uint32_t i = 0; i < LeaAppState::kTaps; ++i) {
      ctx.NvStoreI16(st->coef, static_cast<int16_t>(2048 - 100 * i), 2 * i);  // Q15
    }
    ctx.Cpu(60);
    return st->t_work;
  });
  st->t_work = app.graph.Add("filter", [st](k::TaskCtx& ctx) {
    sim::Device& d = ctx.dev();
    // Stage operands into LEA SRAM (volatile: redone every attempt by construction).
    d.CpuCopy(st->sram_in, ctx.nv().slot(st->signal).addr, LeaAppState::kIn * 2);
    d.CpuCopy(st->sram_coef, ctx.nv().slot(st->coef).addr, LeaAppState::kTaps * 2);
    ctx.CallIo(st->lea, [st](k::TaskCtx& c) {
      c.dev().lea().Fir(c.dev(), st->sram_in, st->sram_coef, st->sram_out, LeaAppState::kOut,
                        LeaAppState::kTaps);
      return static_cast<int16_t>(0);
    });
    d.CpuCopy(ctx.nv().slot(st->result).addr, st->sram_out, LeaAppState::kOut * 2);
    return st->t_report;
  });
  st->t_report = app.graph.Add("report", [st](k::TaskCtx& ctx) {
    ctx.Cpu(30);
    ctx.NvStore16(st->done, 1);
    return k::kTaskDone;
  });
  app.entry = st->t_init;

  st->lea = rt.RegisterIoSite({st->t_work, "lea.fir", 1, k::IoSemantic::kAlways});
  rt.DeclareTaskShared(st->t_work, {}, {});
  rt.DeclareTaskRegions(st->t_work, {{}});

  const uint32_t result_addr = nv.slot(st->result).addr;
  app.collect_output = [result_addr](sim::Device& d) {
    return ReadRaw(d, result_addr, LeaAppState::kOut * 2);
  };
  app.check_consistent = [](sim::Device&) { return true; };
  app.num_tasks = 3;
  app.num_io_funcs = 1;
  app.state = st;
  return app;
}

}  // namespace easeio::apps
