#include "apps/registry.h"

#include "platform/check.h"

namespace easeio::apps {

const char* ToString(AppKind kind) {
  switch (kind) {
    case AppKind::kDma:
      return "DMA";
    case AppKind::kTemp:
      return "Temp.";
    case AppKind::kLea:
      return "LEA";
    case AppKind::kFir:
      return "FIR Filter";
    case AppKind::kWeather:
      return "Weather App.";
    case AppKind::kBranch:
      return "Branch";
  }
  return "?";
}

AppHandle BuildApp(AppKind kind, sim::Device& dev, kernel::Runtime& rt, kernel::NvManager& nv,
                   const AppOptions& options) {
  switch (kind) {
    case AppKind::kDma:
      return BuildDmaApp(dev, rt, nv, options);
    case AppKind::kTemp:
      return BuildTempApp(dev, rt, nv);
    case AppKind::kLea:
      return BuildLeaApp(dev, rt, nv);
    case AppKind::kFir:
      return BuildFirApp(dev, rt, nv, options);
    case AppKind::kWeather:
      return BuildWeatherApp(dev, rt, nv, options);
    case AppKind::kBranch:
      return BuildBranchApp(dev, rt, nv);
  }
  EASEIO_CHECK(false, "unknown app kind");
}

AppTraits TraitsFor(AppKind kind) {
  switch (kind) {
    case AppKind::kDma:
      // Copies a constant FRAM table and checksums it; the source is never rewritten.
      return {.deterministic = true, .dma_mirror = true, .prune_safe = true};
    case AppKind::kLea:
      return {.deterministic = true, .dma_mirror = false, .prune_safe = true};
    case AppKind::kFir:
      // Deterministic, but its Single DMA overwrites the input buffer in place — the
      // mirror property does not apply.
      return {.deterministic = true, .dma_mirror = false, .prune_safe = true};
    case AppKind::kTemp:
    case AppKind::kWeather:
      // Sensor readings drift with wall time, but nothing branches on them and the
      // consistency predicates check structure, not values — pruning stays sound.
      return {.deterministic = false, .dma_mirror = false, .prune_safe = true};
    case AppKind::kBranch:
      // The sensed temperature picks the task chain: two states equal in durable
      // bytes can still diverge on the next reading. Never pruned.
      return {.deterministic = false, .dma_mirror = false, .prune_safe = false};
  }
  return {};
}

}  // namespace easeio::apps
