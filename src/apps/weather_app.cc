// DNN-based weather classification application (Figure 9, Table 5).
//
// Eleven tasks: init -> calibrate -> sense (I/O block: Timely temperature + Always
// humidity under a Single block) -> capture (Single) -> conv1 -> relu -> conv2 -> fc ->
// infer -> send (Single) -> done. The convolution and fully-connected layers stage
// operands into LEA SRAM with DMA, exactly as TAILS-style firmware does.
//
// With `single_buffer` every layer reads and writes the same non-volatile activation
// buffer — safe only under EaseIO's Private DMA + regional privatization (Table 5).
// With double buffering the layers ping-pong between two activation buffers, which is
// the workaround the paper says programmers use today.

#include <cstring>
#include <memory>

#include "apps/apps.h"
#include "apps/reference.h"
#include "core/easeio_runtime.h"

namespace easeio::apps {

namespace k = easeio::kernel;

namespace {

constexpr uint32_t kImgH = 16, kImgW = 16;               // input image (int16)
constexpr uint32_t kK = 3;                               // conv kernel size
constexpr uint32_t kC1H = kImgH - kK + 1, kC1W = kImgW - kK + 1;  // 14x14
constexpr uint32_t kC2H = kC1H - kK + 1, kC2W = kC1W - kK + 1;    // 12x12
constexpr uint32_t kFcIn = kC2H * kC2W;                  // 144
constexpr uint32_t kClasses = 4;

int16_t Conv1WeightAt(uint32_t i) { return static_cast<int16_t>(900 - 210 * static_cast<int32_t>(i)); }
int16_t Conv2WeightAt(uint32_t i) { return static_cast<int16_t>(-700 + 180 * static_cast<int32_t>(i)); }
int16_t FcWeightAt(uint32_t i) {
  return static_cast<int16_t>(((i * 37) % 257) - 128);
}

struct WeatherAppState {
  AppOptions options;

  // Non-volatile state.
  k::NvSlotId image = k::kNoSlot;
  k::NvSlotId k1 = k::kNoSlot, k2 = k::kNoSlot, fcw = k::kNoSlot;
  k::NvSlotId buf1 = k::kNoSlot, buf2 = k::kNoSlot;
  k::NvSlotId scores = k::kNoSlot, result = k::kNoSlot;
  k::NvSlotId temp = k::kNoSlot, humd = k::kNoSlot, payload = k::kNoSlot;
  k::NvSlotId done = k::kNoSlot;

  // LEA SRAM staging.
  uint32_t sram_in = 0, sram_k = 0, sram_out = 0, sram_w = 0;

  // Sites.
  k::IoBlockId sense_blk = k::kNoBlock;
  k::IoSiteId io_temp = k::kNoSite, io_humd = k::kNoSite, io_cam = k::kNoSite,
              io_send = k::kNoSite;
  k::IoSiteId lea_c1 = k::kNoSite, lea_relu = k::kNoSite, lea_c2 = k::kNoSite,
              lea_fc = k::kNoSite;
  k::DmaSiteId d_c1_in = k::kNoSite, d_c1_k = k::kNoSite, d_c1_out = k::kNoSite;
  k::DmaSiteId d_relu_in = k::kNoSite, d_relu_out = k::kNoSite;
  k::DmaSiteId d_c2_in = k::kNoSite, d_c2_k = k::kNoSite, d_c2_out = k::kNoSite;
  k::DmaSiteId d_fc_in = k::kNoSite, d_fc_w = k::kNoSite, d_fc_out = k::kNoSite;

  // Tasks.
  k::TaskId t_init = 0, t_cal = 0, t_sense = 0, t_capture = 0, t_conv1 = 0, t_relu = 0,
            t_conv2 = 0, t_fc = 0, t_infer = 0, t_send = 0, t_done = 0;

  // Memoized reference evaluation for check_consistent. The judge re-derives the
  // expected classification from the image and weights it reads back off the device;
  // across the thousands of trials a chk exploration runs, those inputs are identical
  // in all but the (rare) corrupted-run case, so the pipeline result is cached keyed
  // on the exact read-back inputs. A corrupted input misses the cache and is
  // recomputed — the verdict is unchanged, only the repeat work is skipped.
  struct RefCache {
    bool valid = false;
    // Raw little-endian bytes as stored on the device, so the hit check is a memcmp
    // against PeekBlock views instead of per-word reads and vector rebuilds.
    std::vector<uint8_t> image, k1, k2, fcw;
    std::vector<int16_t> scores;
  } ref_cache;
};

std::vector<int16_t> DecodeWords(const uint8_t* bytes, uint32_t words) {
  std::vector<int16_t> out(words);
  for (uint32_t i = 0; i < words; ++i) {
    out[i] = static_cast<int16_t>(
        static_cast<uint16_t>(bytes[2 * i]) |
        (static_cast<uint16_t>(bytes[2 * i + 1]) << 8));
  }
  return out;
}

}  // namespace

AppHandle BuildWeatherApp(sim::Device& dev, kernel::Runtime& rt, kernel::NvManager& nv,
                          const AppOptions& options) {
  auto st = std::make_shared<WeatherAppState>();
  st->options = options;

  st->image = nv.Define("wx.image", kImgH * kImgW * 2);
  st->k1 = nv.Define("wx.k1", kK * kK * 2);
  st->k2 = nv.Define("wx.k2", kK * kK * 2);
  st->fcw = nv.Define("wx.fcw", kFcIn * kClasses * 2);
  st->buf1 = nv.Define("wx.buf1", kC1H * kC1W * 2);
  st->buf2 = nv.Define("wx.buf2", kC1H * kC1W * 2);
  st->scores = nv.Define("wx.scores", kClasses * 2);
  st->result = nv.Define("wx.result", 2);
  st->temp = nv.Define("wx.temp", 2);
  st->humd = nv.Define("wx.humd", 2);
  st->payload = nv.Define("wx.payload", 6);
  st->done = nv.Define("wx.done", 2);
  const k::NvSlotId job_count = nv.Define("wx.jobs", 2);

  st->sram_in = dev.mem().AllocSram("wx.sram.in", kImgH * kImgW * 2);
  st->sram_k = dev.mem().AllocSram("wx.sram.k", kK * kK * 2);
  st->sram_out = dev.mem().AllocSram("wx.sram.out", kC1H * kC1W * 2);
  st->sram_w = dev.mem().AllocSram("wx.sram.w", kFcIn * kClasses * 2);

  // In the single-buffer configuration every layer flows through buf1.
  const auto act_in = [st](uint32_t layer) {
    // layer: 1=relu input, 2=conv2 input, 3=fc input
    if (st->options.single_buffer) {
      return st->buf1;
    }
    return layer == 2 ? st->buf2 : st->buf1;
  };

  AppHandle app;
  st->t_init = app.graph.Add("init", [st](k::TaskCtx& ctx) {
    for (uint32_t i = 0; i < kK * kK; ++i) {
      ctx.NvStoreI16(st->k1, Conv1WeightAt(i), 2 * i);
      ctx.NvStoreI16(st->k2, Conv2WeightAt(i), 2 * i);
    }
    for (uint32_t i = 0; i < kFcIn * kClasses; ++i) {
      ctx.NvStoreI16(st->fcw, FcWeightAt(i), 2 * i);
    }
    ctx.NvStore16(st->done, 0);
    return st->t_cal;
  });
  st->t_cal = app.graph.Add("calibrate", [st](k::TaskCtx& ctx) {
    ctx.Cpu(400);
    return st->t_sense;
  });
  st->t_sense = app.graph.Add("sense", [st](k::TaskCtx& ctx) {
    // Humidity must follow temperature within the block's constraints; the whole pair
    // has Single semantics (Figure 3).
    ctx.IoBlockBegin(st->sense_blk);
    const int16_t temp = ctx.CallIo(st->io_temp, [](k::TaskCtx& c) {
      return c.dev().temp().Read(c.dev());
    });
    const int16_t humd = ctx.CallIo(st->io_humd, [](k::TaskCtx& c) {
      return c.dev().humidity().Read(c.dev());
    });
    ctx.IoBlockEnd(st->sense_blk);
    ctx.NvStoreI16(st->temp, temp);
    ctx.NvStoreI16(st->humd, humd);
    // Dew-point estimation and smoothing on the fresh readings. A failure here makes
    // the baselines re-sample both sensors; EaseIO's completed block skips them.
    ctx.Cpu(2000);
    return st->t_capture;
  });
  st->t_capture = app.graph.Add("capture", [st](k::TaskCtx& ctx) {
    ctx.CallIo(st->io_cam, [st](k::TaskCtx& c) {
      const uint32_t addr = c.nv().slot(st->image).addr;
      c.dev().camera().Capture(c.dev(), addr, kImgH * kImgW * 2);
      return static_cast<int16_t>(c.dev().mem().Read16(addr));
    });
    // Exposure/white-balance statistics over the captured frame. A failure here makes
    // the baselines re-capture (5 ms); EaseIO's Single capture is skipped.
    for (uint32_t i = 0; i < 64; ++i) {
      ctx.NvLoad16(st->image, 8 * i);
    }
    ctx.Cpu(5000);
    return st->t_conv1;
  });
  st->t_conv1 = app.graph.Add("conv1", [st](k::TaskCtx& ctx) {
    ctx.DmaCopy(st->d_c1_in, st->sram_in, ctx.nv().slot(st->image).addr, kImgH * kImgW * 2);
    ctx.DmaCopy(st->d_c1_k, st->sram_k, ctx.nv().slot(st->k1).addr, kK * kK * 2);
    ctx.CallIo(st->lea_c1, [st](k::TaskCtx& c) {
      c.dev().lea().Conv2dValid(c.dev(), st->sram_in, st->sram_k, st->sram_out, kImgH, kImgW,
                                kK);
      return static_cast<int16_t>(0);
    });
    ctx.DmaCopy(st->d_c1_out, ctx.nv().slot(st->buf1).addr, st->sram_out, kC1H * kC1W * 2);
    ctx.Cpu(800);  // feature statistics
    return st->t_relu;
  });
  st->t_relu = app.graph.Add("relu", [st, act_in](k::TaskCtx& ctx) {
    const uint32_t in_slot = act_in(1);
    ctx.DmaCopy(st->d_relu_in, st->sram_in, ctx.nv().slot(in_slot).addr, kC1H * kC1W * 2);
    ctx.CallIo(st->lea_relu, [st](k::TaskCtx& c) {
      c.dev().lea().Relu(c.dev(), st->sram_in, kC1H * kC1W);
      return static_cast<int16_t>(0);
    });
    const uint32_t out_slot = st->options.single_buffer ? st->buf1 : st->buf2;
    ctx.DmaCopy(st->d_relu_out, ctx.nv().slot(out_slot).addr, st->sram_in, kC1H * kC1W * 2);
    ctx.Cpu(600);
    return st->t_conv2;
  });
  st->t_conv2 = app.graph.Add("conv2", [st, act_in](k::TaskCtx& ctx) {
    const uint32_t in_slot = act_in(2);
    ctx.DmaCopy(st->d_c2_in, st->sram_in, ctx.nv().slot(in_slot).addr, kC1H * kC1W * 2);
    ctx.DmaCopy(st->d_c2_k, st->sram_k, ctx.nv().slot(st->k2).addr, kK * kK * 2);
    ctx.CallIo(st->lea_c2, [st](k::TaskCtx& c) {
      c.dev().lea().Conv2dValid(c.dev(), st->sram_in, st->sram_k, st->sram_out, kC1H, kC1W,
                                kK);
      return static_cast<int16_t>(0);
    });
    // Writes back into buf1 — with a single buffer this is the WAR hazard: the input
    // this task just consumed lived in the very same words.
    ctx.DmaCopy(st->d_c2_out, ctx.nv().slot(st->buf1).addr, st->sram_out, kC2H * kC2W * 2);
    ctx.Cpu(1500);  // post-layer bookkeeping keeps the hazard window open
    return st->t_fc;
  });
  st->t_fc = app.graph.Add("fc", [st](k::TaskCtx& ctx) {
    ctx.DmaCopy(st->d_fc_in, st->sram_in, ctx.nv().slot(st->buf1).addr, kFcIn * 2);
    ctx.DmaCopy(st->d_fc_w, st->sram_w, ctx.nv().slot(st->fcw).addr, kFcIn * kClasses * 2);
    ctx.CallIo(st->lea_fc, [st](k::TaskCtx& c) {
      c.dev().lea().FullyConnected(c.dev(), st->sram_in, st->sram_w, st->sram_out, kFcIn,
                                   kClasses);
      return static_cast<int16_t>(0);
    });
    ctx.DmaCopy(st->d_fc_out, ctx.nv().slot(st->scores).addr, st->sram_out, kClasses * 2);
    ctx.Cpu(300);
    return st->t_infer;
  });
  st->t_infer = app.graph.Add("infer", [st](k::TaskCtx& ctx) {
    int16_t best = ctx.NvLoadI16(st->scores, 0);
    uint16_t best_i = 0;
    for (uint32_t i = 1; i < kClasses; ++i) {
      const int16_t v = ctx.NvLoadI16(st->scores, 2 * i);
      if (v > best) {
        best = v;
        best_i = static_cast<uint16_t>(i);
      }
    }
    ctx.NvStore16(st->result, best_i);
    ctx.NvStore16(st->payload, static_cast<uint16_t>(ctx.NvLoadI16(st->temp)), 0);
    ctx.NvStore16(st->payload, static_cast<uint16_t>(ctx.NvLoadI16(st->humd)), 2);
    ctx.NvStore16(st->payload, best_i, 4);
    ctx.Cpu(200);
    return st->t_send;
  });
  st->t_send = app.graph.Add("send", [st](k::TaskCtx& ctx) {
    ctx.CallIo(st->io_send, [st](k::TaskCtx& c) {
      c.dev().radio().Send(c.dev(), c.nv().slot(st->payload).addr, 6);
      return static_cast<int16_t>(0);
    });
    // Transmission log + next-wakeup scheduling. A failure here makes the baselines
    // retransmit the packet; EaseIO's Single send is skipped.
    ctx.Cpu(1500);
    return st->t_done;
  });
  const uint32_t jobs = options.jobs == 0 ? 1 : options.jobs;
  st->t_done = app.graph.Add("done", [st, job_count, jobs](k::TaskCtx& ctx) {
    const uint16_t completed = static_cast<uint16_t>(ctx.NvLoad16(job_count) + 1);
    ctx.NvStore16(job_count, completed);
    ctx.Cpu(1500);  // job epilogue: rotate logs, schedule the next wakeup
    if (completed < jobs) {
      return st->t_sense;  // next sensing job
    }
    ctx.NvStore16(st->done, 1);
    return k::kTaskDone;
  });
  app.entry = st->t_init;

  // --- Sites and compiler-analysis facts -------------------------------------------------
  st->sense_blk = rt.RegisterIoBlock({st->t_sense, "wx.sense", k::IoSemantic::kSingle});
  st->io_temp = rt.RegisterIoSite({st->t_sense, "wx.temp", 1, k::IoSemantic::kTimely, 10'000,
                                   {}, st->sense_blk});
  st->io_humd = rt.RegisterIoSite({st->t_sense, "wx.humd", 1, k::IoSemantic::kAlways, 0, {},
                                   st->sense_blk});
  st->io_cam = rt.RegisterIoSite({st->t_capture, "wx.capture", 1, k::IoSemantic::kSingle});
  st->lea_c1 = rt.RegisterIoSite({st->t_conv1, "wx.lea.c1", 1, k::IoSemantic::kAlways});
  st->lea_relu = rt.RegisterIoSite({st->t_relu, "wx.lea.relu", 1, k::IoSemantic::kAlways});
  st->lea_c2 = rt.RegisterIoSite({st->t_conv2, "wx.lea.c2", 1, k::IoSemantic::kAlways});
  st->lea_fc = rt.RegisterIoSite({st->t_fc, "wx.lea.fc", 1, k::IoSemantic::kAlways});
  st->io_send = rt.RegisterIoSite({st->t_send, "wx.send", 1, k::IoSemantic::kSingle});

  st->d_c1_in = rt.RegisterDmaSite({st->t_conv1, "wx.d.c1_in", false, k::kNoSite});
  st->d_c1_k = rt.RegisterDmaSite({st->t_conv1, "wx.d.c1_k", options.exclude_const_dma,
                                   k::kNoSite});
  st->d_c1_out = rt.RegisterDmaSite({st->t_conv1, "wx.d.c1_out", false, k::kNoSite});
  st->d_relu_in = rt.RegisterDmaSite({st->t_relu, "wx.d.relu_in", false, k::kNoSite});
  st->d_relu_out = rt.RegisterDmaSite({st->t_relu, "wx.d.relu_out", false, k::kNoSite});
  st->d_c2_in = rt.RegisterDmaSite({st->t_conv2, "wx.d.c2_in", false, k::kNoSite});
  st->d_c2_k = rt.RegisterDmaSite({st->t_conv2, "wx.d.c2_k", options.exclude_const_dma,
                                   k::kNoSite});
  st->d_c2_out = rt.RegisterDmaSite({st->t_conv2, "wx.d.c2_out", false, k::kNoSite});
  st->d_fc_in = rt.RegisterDmaSite({st->t_fc, "wx.d.fc_in", false, k::kNoSite});
  st->d_fc_w = rt.RegisterDmaSite({st->t_fc, "wx.d.fc_w", options.exclude_const_dma,
                                   k::kNoSite});
  st->d_fc_out = rt.RegisterDmaSite({st->t_fc, "wx.d.fc_out", false, k::kNoSite});

  // The job counter is read-modify-write across attempts: every runtime must privatize
  // it (WAR) or the increment would double on re-execution.
  rt.DeclareTaskShared(st->t_done, {job_count}, {job_count});
  rt.DeclareTaskRegions(st->t_done, {{job_count}});
  rt.DeclareTaskShared(st->t_sense, {st->temp, st->humd}, {});
  rt.DeclareTaskShared(st->t_infer, {st->scores, st->result, st->payload}, {});
  rt.DeclareTaskRegions(st->t_conv1, {{}, {}, {}, {}});
  rt.DeclareTaskRegions(st->t_relu, {{}, {}, {}});
  rt.DeclareTaskRegions(st->t_conv2, {{}, {}, {}, {}});
  rt.DeclareTaskRegions(st->t_fc, {{}, {}, {}, {}});

  // --- Output collection and the end-to-end consistency invariant -------------------------
  const uint32_t image_addr = nv.slot(st->image).addr;
  const uint32_t k1_addr = nv.slot(st->k1).addr;
  const uint32_t k2_addr = nv.slot(st->k2).addr;
  const uint32_t fcw_addr = nv.slot(st->fcw).addr;
  const uint32_t scores_addr = nv.slot(st->scores).addr;
  const uint32_t result_addr = nv.slot(st->result).addr;
  const uint32_t jobs_addr = nv.slot(job_count).addr;

  app.collect_output = [scores_addr, result_addr](sim::Device& d) {
    std::vector<uint8_t> out;
    for (uint32_t i = 0; i < kClasses * 2 + 2; ++i) {
      out.push_back(d.mem().Read8(scores_addr + i));
    }
    (void)result_addr;
    return out;
  };
  app.check_consistent = [st, image_addr, k1_addr, k2_addr, fcw_addr, scores_addr,
                          result_addr, jobs_addr, jobs](sim::Device& d) {
    // Every requested job must have run exactly once — the counter is a WAR variable
    // whose double-increment is precisely what task privatization exists to stop.
    if (d.mem().Read16(jobs_addr) != jobs) {
      return false;
    }
    // The stored classification must equal a reference evaluation of the stored image
    // through the stored weights — any lost/duplicated layer or clobbered activation
    // breaks this. The reference pipeline is memoized on the read-back inputs (see
    // WeatherAppState::RefCache): identical inputs, which is every uncorrupted trial,
    // reuse the previous evaluation.
    constexpr uint32_t kImageBytes = kImgH * kImgW * 2;
    constexpr uint32_t kKernelBytes = kK * kK * 2;
    constexpr uint32_t kFcwBytes = kFcIn * kClasses * 2;
    const uint8_t* image_p = d.mem().PeekBlock(image_addr, kImageBytes);
    const uint8_t* k1_p = d.mem().PeekBlock(k1_addr, kKernelBytes);
    const uint8_t* k2_p = d.mem().PeekBlock(k2_addr, kKernelBytes);
    const uint8_t* fcw_p = d.mem().PeekBlock(fcw_addr, kFcwBytes);
    auto& cache = st->ref_cache;
    const auto same = [](const std::vector<uint8_t>& c, const uint8_t* p, uint32_t n) {
      return c.size() == n && std::memcmp(c.data(), p, n) == 0;
    };
    if (!cache.valid || !same(cache.image, image_p, kImageBytes) ||
        !same(cache.k1, k1_p, kKernelBytes) || !same(cache.k2, k2_p, kKernelBytes) ||
        !same(cache.fcw, fcw_p, kFcwBytes)) {
      const auto image = DecodeWords(image_p, kImgH * kImgW);
      const auto k1 = DecodeWords(k1_p, kK * kK);
      const auto k2 = DecodeWords(k2_p, kK * kK);
      const auto fcw = DecodeWords(fcw_p, kFcIn * kClasses);
      const auto c1 = ref::Conv2dValid(image, k1, kImgH, kImgW, kK);
      const auto r = ref::Relu(c1);
      const auto c2 = ref::Conv2dValid(r, k2, kC1H, kC1W, kK);
      cache.scores = ref::FullyConnected(c2, fcw, kClasses);
      cache.image.assign(image_p, image_p + kImageBytes);
      cache.k1.assign(k1_p, k1_p + kKernelBytes);
      cache.k2.assign(k2_p, k2_p + kKernelBytes);
      cache.fcw.assign(fcw_p, fcw_p + kFcwBytes);
      cache.valid = true;
    }
    const auto& scores = cache.scores;
    for (uint32_t i = 0; i < kClasses; ++i) {
      if (d.mem().ReadI16(scores_addr + 2 * i) != scores[i]) {
        return false;
      }
    }
    return d.mem().Read16(result_addr) == ref::ArgMax(scores);
  };
  app.num_tasks = 11;
  app.num_io_funcs = 5;  // Temp, Humd, Camera, LEA, Send
  app.state = st;
  return app;
}

}  // namespace easeio::apps
