// Constructs the runtime under test by name — the harness's way of sweeping
// {Alpaca, InK, EaseIO, EaseIO/Op} over the same application.

#ifndef EASEIO_APPS_RUNTIME_FACTORY_H_
#define EASEIO_APPS_RUNTIME_FACTORY_H_

#include <memory>
#include <string>

#include "core/easeio_runtime.h"
#include "kernel/runtime.h"

namespace easeio::apps {

enum class RuntimeKind {
  kAlpaca,
  kInk,
  kSamoyed,   // extension: atomic-function baseline (Table 1's third comparator)
  kEaseio,
  kEaseioOp,  // EaseIO with the Exclude annotation applied to constant-data DMAs
};

const char* ToString(RuntimeKind kind);

// Creates an unbound runtime instance of the given kind. `easeio_config` customises
// the EaseIO variants (ignored for the baselines).
std::unique_ptr<kernel::Runtime> MakeRuntime(RuntimeKind kind,
                                             const rt::EaseioConfig& easeio_config = {});

// True when `kind` is an EaseIO variant (used to set AppOptions::exclude_const_dma).
inline bool IsEaseioOp(RuntimeKind kind) { return kind == RuntimeKind::kEaseioOp; }

}  // namespace easeio::apps

#endif  // EASEIO_APPS_RUNTIME_FACTORY_H_
