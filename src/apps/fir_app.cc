// FIR filter application (Section 5.4.1) and the unsafe-branch micro-app (Figure 2c).
//
// The FIR pipeline deliberately reuses one non-volatile buffer for both the input
// signal and the filtered output — the write-after-read dependency through DMA that
// task-based privatization cannot see. Under Alpaca/InK a power failure landing after
// the output DMA makes the re-executed input DMA read filtered data instead of the
// signal, corrupting the final result (Figure 12). EaseIO classifies the input DMA as
// Private (two-phase copy through the privatization buffer) and the output DMA as
// Single, which removes the hazard.

#include <memory>

#include "apps/apps.h"
#include "apps/reference.h"
#include "core/easeio_runtime.h"

namespace easeio::apps {

namespace k = easeio::kernel;

namespace {

constexpr uint32_t kOut = 1024;
constexpr uint32_t kTaps = 32;
constexpr uint32_t kIn = kOut + kTaps - 1;
constexpr uint32_t kLeaCalls = 4;
constexpr uint32_t kBlock = kOut / kLeaCalls;

// The deterministic input signal and coefficients task `init` writes.
int16_t SignalAt(uint32_t i) { return static_cast<int16_t>((i % 113) * 31 - 1700); }
int16_t CoefAt(uint32_t i) { return static_cast<int16_t>(1800 - 90 * static_cast<int32_t>(i)); }

struct FirAppState {
  k::NvSlotId io_buf = k::kNoSlot;  // input signal, later overwritten by the output
  k::NvSlotId coef = k::kNoSlot;
  k::NvSlotId sum = k::kNoSlot;
  k::NvSlotId done = k::kNoSlot;
  uint32_t sram_in = 0, sram_coef = 0, sram_out = 0;
  k::IoSiteId lea = k::kNoSite;
  k::DmaSiteId dma_in = k::kNoSite, dma_coef = k::kNoSite, dma_out = k::kNoSite;
  k::TaskId t_init = 0, t_prepare = 0, t_process = 0, t_verify = 0, t_report = 0;
};

}  // namespace

AppHandle BuildFirApp(sim::Device& dev, kernel::Runtime& rt, kernel::NvManager& nv,
                      const AppOptions& options) {
  auto st = std::make_shared<FirAppState>();
  st->io_buf = nv.Define("fir.io_buf", kIn * 2);
  st->coef = nv.Define("fir.coef", kTaps * 2);
  st->sum = nv.Define("fir.sum", 4);
  st->done = nv.Define("fir.done", 2);
  st->sram_in = dev.mem().AllocSram("fir.sram.in", kIn * 2);
  st->sram_coef = dev.mem().AllocSram("fir.sram.coef", kTaps * 2);
  st->sram_out = dev.mem().AllocSram("fir.sram.out", kOut * 2);

  AppHandle app;
  st->t_init = app.graph.Add("init", [st](k::TaskCtx& ctx) {
    for (uint32_t i = 0; i < kIn; ++i) {
      ctx.NvStoreI16(st->io_buf, SignalAt(i), 2 * i);
    }
    for (uint32_t i = 0; i < kTaps; ++i) {
      ctx.NvStoreI16(st->coef, CoefAt(i), 2 * i);
    }
    return st->t_prepare;
  });
  st->t_prepare = app.graph.Add("prepare", [st](k::TaskCtx& ctx) {
    ctx.Cpu(300);  // gain calibration
    return st->t_process;
  });
  st->t_process = app.graph.Add("process", [st](k::TaskCtx& ctx) {
    const k::NvSlot& io = ctx.nv().slot(st->io_buf);
    const k::NvSlot& coef = ctx.nv().slot(st->coef);
    // Stage the signal and coefficients into LEA RAM.
    ctx.DmaCopy(st->dma_in, st->sram_in, io.addr, kIn * 2);
    ctx.DmaCopy(st->dma_coef, st->sram_coef, coef.addr, kTaps * 2);
    // Four LEA calls filter the four sample blocks (the paper's loop).
    for (uint32_t b = 0; b < kLeaCalls; ++b) {
      ctx.CallIo(st->lea, b, [st, b](k::TaskCtx& c) {
        c.dev().lea().Fir(c.dev(), st->sram_in + 2 * b * kBlock, st->sram_coef,
                          st->sram_out + 2 * b * kBlock, kBlock, kTaps);
        return static_cast<int16_t>(0);
      });
    }
    // Write the result back over the input signal — the WAR hazard under study.
    ctx.DmaCopy(st->dma_out, io.addr, st->sram_out, kOut * 2);
    // Post-processing after the output DMA keeps the task alive long enough for
    // failures to land in the hazardous window.
    uint32_t sum = 0;
    for (uint32_t i = 0; i < kOut; ++i) {
      sum += ctx.NvLoad16(st->io_buf, 2 * i);
    }
    ctx.Cpu(kOut);
    ctx.NvStore32(st->sum, sum);
    return st->t_verify;
  });
  st->t_verify = app.graph.Add("verify", [st](k::TaskCtx& ctx) {
    ctx.Cpu(200);
    return st->t_report;
  });
  st->t_report = app.graph.Add("report", [st](k::TaskCtx& ctx) {
    ctx.NvStore16(st->done, 1);
    return k::kTaskDone;
  });
  app.entry = st->t_init;

  st->lea = rt.RegisterIoSite({st->t_process, "fir.lea", kLeaCalls, k::IoSemantic::kAlways});
  st->dma_in = rt.RegisterDmaSite({st->t_process, "fir.dma_in", false, k::kNoSite});
  // The coefficients are constant: the "EaseIO /Op." configuration excludes their DMA
  // from privatization.
  st->dma_coef =
      rt.RegisterDmaSite({st->t_process, "fir.dma_coef", options.exclude_const_dma, k::kNoSite});
  st->dma_out = rt.RegisterDmaSite({st->t_process, "fir.dma_out", false, k::kNoSite});
  rt.DeclareTaskShared(st->t_process, {st->sum}, {});
  rt.DeclareTaskRegions(st->t_process, {{}, {}, {}, {}});

  const uint32_t io_addr = nv.slot(st->io_buf).addr;
  const uint32_t sum_addr = nv.slot(st->sum).addr;
  app.collect_output = [io_addr, sum_addr](sim::Device& d) {
    std::vector<uint8_t> out;
    out.reserve(kOut * 2 + 4);
    for (uint32_t i = 0; i < kOut * 2; ++i) {
      out.push_back(d.mem().Read8(io_addr + i));
    }
    for (uint32_t i = 0; i < 4; ++i) {
      out.push_back(d.mem().Read8(sum_addr + i));
    }
    return out;
  };
  app.check_consistent = [io_addr](sim::Device& d) {
    // The final buffer must hold FIR(original signal) — computed from first principles.
    std::vector<int16_t> signal(kIn);
    std::vector<int16_t> coef(kTaps);
    for (uint32_t i = 0; i < kIn; ++i) {
      signal[i] = SignalAt(i);
    }
    for (uint32_t i = 0; i < kTaps; ++i) {
      coef[i] = CoefAt(i);
    }
    const std::vector<int16_t> expect = ref::Fir(signal, coef, kOut);
    for (uint32_t i = 0; i < kOut; ++i) {
      if (d.mem().ReadI16(io_addr + 2 * i) != expect[i]) {
        return false;
      }
    }
    return true;
  };
  app.num_tasks = 5;
  app.num_io_funcs = 2;  // LEA + DMA
  app.state = st;
  return app;
}

// ---------------------------------------------------------------------------------------
// Unsafe-branch micro-app (Figure 2c): the sensed temperature decides which of two
// persistent flags is set. Re-executing the read after a power failure can flip the
// branch, leaving both flags set under the baselines; EaseIO restores the first
// successful reading and always takes the same branch.
// ---------------------------------------------------------------------------------------

namespace {

struct BranchAppState {
  k::NvSlotId stdy = k::kNoSlot;
  k::NvSlotId alarm = k::kNoSlot;
  k::NvSlotId temp = k::kNoSlot;
  k::IoSiteId read = k::kNoSite;
  k::TaskId t_init = 0, t_sense = 0, t_done = 0;
};

}  // namespace

AppHandle BuildBranchApp(sim::Device& dev, kernel::Runtime& rt, kernel::NvManager& nv) {
  (void)dev;
  auto st = std::make_shared<BranchAppState>();
  st->stdy = nv.Define("branch.stdy", 2);
  st->alarm = nv.Define("branch.alarm", 2);
  st->temp = nv.Define("branch.temp", 2);

  AppHandle app;
  st->t_init = app.graph.Add("init", [st](k::TaskCtx& ctx) {
    ctx.NvStore16(st->stdy, 0);
    ctx.NvStore16(st->alarm, 0);
    return st->t_sense;
  });
  st->t_sense = app.graph.Add("sense", [st](k::TaskCtx& ctx) {
    const int16_t temp = ctx.CallIo(st->read, [](k::TaskCtx& c) {
      return c.dev().temp().Read(c.dev());
    });
    ctx.NvStoreI16(st->temp, temp);
    if (temp < 100) {  // 10.0 degrees, in tenths
      ctx.NvStore16(st->stdy, 1);
    } else {
      ctx.NvStore16(st->alarm, 1);
    }
    // The alarm actuation path — long enough for failures to land after the store.
    ctx.Cpu(7000);
    return st->t_done;
  });
  st->t_done = app.graph.Add("done", [](k::TaskCtx& ctx) {
    ctx.Cpu(20);
    return k::kTaskDone;
  });
  app.entry = st->t_init;

  st->read = rt.RegisterIoSite({st->t_sense, "branch.temp", 1, k::IoSemantic::kSingle});
  // The flags are plain __nv variables written directly, as in the paper's listing —
  // no baseline privatization covers them.
  rt.DeclareTaskShared(st->t_sense, {}, {});
  rt.DeclareTaskRegions(st->t_sense, {{st->stdy, st->alarm}});

  const uint32_t stdy_addr = nv.slot(st->stdy).addr;
  const uint32_t alarm_addr = nv.slot(st->alarm).addr;
  const uint32_t temp_addr = nv.slot(st->temp).addr;
  app.collect_output = [stdy_addr, alarm_addr, temp_addr](sim::Device& d) {
    return std::vector<uint8_t>{
        d.mem().Read8(stdy_addr),  d.mem().Read8(stdy_addr + 1),
        d.mem().Read8(alarm_addr), d.mem().Read8(alarm_addr + 1),
        d.mem().Read8(temp_addr),  d.mem().Read8(temp_addr + 1),
    };
  };
  app.check_consistent = [stdy_addr, alarm_addr](sim::Device& d) {
    // Exactly one of the two flags may be set.
    return d.mem().Read16(stdy_addr) + d.mem().Read16(alarm_addr) == 1;
  };
  app.num_tasks = 3;
  app.num_io_funcs = 1;
  app.state = st;
  return app;
}

}  // namespace easeio::apps
