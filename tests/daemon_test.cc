// Unit tests for the easeiod daemon building blocks: the strict JSON parser, the
// SHA-256 content hash, the canonical cache key, the on-disk result cache, and the
// job runner (in-process, no socket). The server protocol itself is covered by
// daemon_server_test.cc.

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "daemon/cache.h"
#include "platform/hash.h"
#include "daemon/jobspec.h"
#include "daemon/jsonin.h"
#include "daemon/runner.h"
#include "easec/lint/run.h"
#include "obs/trace_job.h"
#include "report/jobs.h"

namespace easeio::daemon {
namespace {

using platform::Sha256;
using platform::Sha256Hex;

namespace fs = std::filesystem;

// A unique fresh directory per test, removed on teardown.
class TempDir {
 public:
  explicit TempDir(const char* tag) {
    static std::atomic<int> counter{0};
    path_ = fs::temp_directory_path() /
            (std::string("easeio-daemon-test-") + tag + "-" +
             std::to_string(::getpid()) + "-" + std::to_string(counter++));
    fs::remove_all(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  std::string str() const { return path_.string(); }

 private:
  fs::path path_;
};

// --- jsonin --------------------------------------------------------------------------

TEST(JsonInTest, ParsesScalarsAndContainers) {
  JsonValue v;
  std::string error;
  ASSERT_TRUE(ParseJson(R"({"a":1,"b":[true,null,"x\n"],"c":{"d":-2.5}})", &v, &error))
      << error;
  ASSERT_TRUE(v.is_object());
  uint64_t a = 0;
  ASSERT_TRUE(v.Find("a")->GetUint(&a));
  EXPECT_EQ(a, 1u);
  const JsonValue* b = v.Find("b");
  ASSERT_TRUE(b->is_array());
  ASSERT_EQ(b->Items().size(), 3u);
  EXPECT_TRUE(b->Items()[0].AsBool());
  EXPECT_TRUE(b->Items()[1].is_null());
  EXPECT_EQ(b->Items()[2].AsString(), "x\n");
  double d = 0;
  ASSERT_TRUE(v.Find("c")->Find("d")->GetDouble(&d));
  EXPECT_EQ(d, -2.5);
}

TEST(JsonInTest, RejectsMalformedInput) {
  const char* kBad[] = {
      "",            "{",           "[1,]",      "{\"a\":}",  "{'a':1}",
      "{\"a\":01}",  "[1 2]",       "tru",       "\"\\q\"",   "{\"a\":1}x",
      "\"\x01\"",    "{\"a\":1,\"a\":2}",  // duplicate key
  };
  for (const char* text : kBad) {
    JsonValue v;
    std::string error;
    EXPECT_FALSE(ParseJson(text, &v, &error)) << "accepted: " << text;
    EXPECT_FALSE(error.empty());
  }
}

TEST(JsonInTest, EnforcesDepthCap) {
  std::string deep;
  for (int i = 0; i < 40; ++i) deep += "[";
  for (int i = 0; i < 40; ++i) deep += "]";
  JsonValue v;
  std::string error;
  EXPECT_FALSE(ParseJson(deep, &v, &error, /*max_depth=*/32));
  EXPECT_TRUE(ParseJson(deep, &v, &error, /*max_depth=*/64)) << error;
}

TEST(JsonInTest, UintRejectsNegativeAndFractional) {
  JsonValue v;
  std::string error;
  ASSERT_TRUE(ParseJson(R"([-1, 1.5, 18446744073709551615, 1e2])", &v, &error));
  uint64_t u = 0;
  EXPECT_FALSE(v.Items()[0].GetUint(&u));
  EXPECT_FALSE(v.Items()[1].GetUint(&u));
  EXPECT_TRUE(v.Items()[2].GetUint(&u));
  EXPECT_EQ(u, UINT64_MAX);
  EXPECT_FALSE(v.Items()[3].GetUint(&u));  // exponent form is not an integer literal
}

// --- sha256 --------------------------------------------------------------------------

TEST(Sha256Test, KnownVectors) {
  // FIPS 180-4 / NIST test vectors.
  EXPECT_EQ(Sha256Hex(""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(Sha256Hex("abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(Sha256Hex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
  // One block boundary case: 64 bytes exactly.
  EXPECT_EQ(Sha256Hex(std::string(64, 'a')),
            "ffe054fe7ae0cb6dc65c3af9b61d5209f439851db43d0ba5997337df154668eb");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  Sha256 h;
  h.Update("hello ");
  h.Update("");
  h.Update("world");
  const auto digest = h.Digest();
  std::string hex;
  for (uint8_t b : digest) {
    char buf[3];
    std::snprintf(buf, sizeof buf, "%02x", b);
    hex += buf;
  }
  EXPECT_EQ(hex, Sha256Hex("hello world"));
}

// --- jobspec: canonical key ----------------------------------------------------------

TEST(JobSpecTest, EveryKeyComponentChangesTheHash) {
  JobSpec base;
  base.kind = JobKind::kExplore;
  const std::string h0 = ContentHash(base);

  JobSpec changed = base;
  changed.seed = 2;
  EXPECT_NE(ContentHash(changed), h0) << "seed must be in the key";
  changed = base;
  changed.apps = {apps::AppKind::kTemp};
  EXPECT_NE(ContentHash(changed), h0) << "apps must be in the key";
  changed = base;
  changed.runtimes = {apps::RuntimeKind::kAlpaca};
  EXPECT_NE(ContentHash(changed), h0) << "runtimes must be in the key";
  changed = base;
  changed.depth = 1;
  EXPECT_NE(ContentHash(changed), h0) << "depth must be in the key";
  changed = base;
  changed.budget = 99;
  EXPECT_NE(ContentHash(changed), h0) << "budget must be in the key";
  changed = base;
  changed.off_us = 1;
  EXPECT_NE(ContentHash(changed), h0) << "off_us must be in the key";
  changed = base;
  changed.use_snapshot = false;
  EXPECT_NE(ContentHash(changed), h0) << "engine mode stays in the key";
  changed = base;
  changed.use_pruning = false;
  EXPECT_NE(ContentHash(changed), h0) << "pruning mode stays in the key";
  changed = base;
  changed.exhaust = 2;
  EXPECT_NE(ContentHash(changed), h0) << "exhaust changes artifact bytes";
  changed = base;
  changed.regional = false;
  EXPECT_NE(ContentHash(changed), h0) << "regional must be in the key";
  changed = base;
  changed.priv_buffer_bytes = 1;
  EXPECT_NE(ContentHash(changed), h0) << "priv_buffer must be in the key";
  changed = base;
  changed.tick_us = 7;
  EXPECT_NE(ContentHash(changed), h0) << "tick_us must be in the key";
  changed = base;
  changed.kind = JobKind::kSweep;
  EXPECT_NE(ContentHash(changed), h0) << "kind must be in the key";
}

TEST(JobSpecTest, ExecutionHintsDoNotChangeTheHash) {
  JobSpec base;
  JobSpec more_workers = base;
  more_workers.exec_jobs = 64;
  EXPECT_EQ(ContentHash(base), ContentHash(more_workers))
      << "worker count cannot affect artifact bytes and must not shard the cache";
}

TEST(JobSpecTest, KindScopedFieldsAreIgnoredForOtherKinds) {
  // A sweep's hash must not change when explore-only knobs move: they cannot affect
  // a sweep artifact, and keying on them would shard identical results.
  JobSpec base;
  base.kind = JobKind::kSweep;
  JobSpec changed = base;
  changed.depth = 1;
  changed.budget = 3;
  changed.source = "task t {}";
  EXPECT_EQ(ContentHash(base), ContentHash(changed));
}

TEST(JobSpecTest, LintKeyHashesSourceText) {
  JobSpec a;
  a.kind = JobKind::kLint;
  a.source = "task t1 { write out; }";
  JobSpec b = a;
  b.source = "task t1 { write out2; }";
  EXPECT_NE(ContentHash(a), ContentHash(b));
  JobSpec renamed = a;
  renamed.source_name = "other.ec";
  EXPECT_NE(ContentHash(a), ContentHash(renamed))
      << "the source name is echoed into the artifact, so it is part of the key";
}

TEST(JobSpecTest, TraceTimelineSelectsSchema) {
  JobSpec profile;
  profile.kind = JobKind::kTrace;
  JobSpec timeline = profile;
  timeline.timeline = true;
  EXPECT_NE(ContentHash(profile), ContentHash(timeline));
  EXPECT_NE(CanonicalKey(profile).find("easeio-profile/1"), std::string::npos);
  EXPECT_NE(CanonicalKey(timeline).find("easeio-trace/1"), std::string::npos);
}

TEST(JobSpecTest, JsonRoundTripPreservesTheHash) {
  JobSpec specs[4];
  specs[0].kind = JobKind::kSweep;
  specs[0].apps = {apps::AppKind::kTemp, apps::AppKind::kDma};
  specs[0].runtimes = {apps::RuntimeKind::kEaseioOp};
  specs[0].runs = 7;
  specs[0].seed = 42;
  specs[1].kind = JobKind::kExplore;
  specs[1].depth = 1;
  specs[1].budget = 11;
  specs[1].use_snapshot = false;
  specs[1].use_pruning = false;
  specs[2].kind = JobKind::kLint;
  specs[2].source = "task t1 { write \"x\\n\"; }";
  specs[2].source_name = "quote\"name.ec";
  specs[2].witness = true;
  specs[3].kind = JobKind::kTrace;
  specs[3].timeline = true;
  specs[3].harvester_in = 52.5;

  for (const JobSpec& spec : specs) {
    JsonValue v;
    std::string error;
    ASSERT_TRUE(ParseJson(ToJson(spec), &v, &error)) << error;
    JobSpec parsed;
    ASSERT_TRUE(ParseJobSpec(v, &parsed, &error)) << error;
    EXPECT_EQ(ContentHash(parsed), ContentHash(spec));
    EXPECT_EQ(ToJson(parsed), ToJson(spec));
  }
}

TEST(JobSpecTest, ParseRejectsUnknownAndOutOfRangeFields) {
  const char* kBad[] = {
      R"({"kind":"sweep","bogus":1})",
      R"({"kind":"warp"})",
      R"({"kind":"sweep","runs":0})",
      R"({"kind":"explore","depth":3})",
      R"({"kind":"sweep","apps":[]})",
      R"({"kind":"sweep","apps":["nope"]})",
      R"({"kind":"lint"})",  // lint requires source
      R"({"kind":"sweep","jobs":5000})",
      R"({"kind":"explore","exhaust":3})",
      R"({"kind":"explore","exhaust":1,"snapshot":false})",  // needs the snapshot engine
  };
  for (const char* text : kBad) {
    JsonValue v;
    std::string error;
    ASSERT_TRUE(ParseJson(text, &v, &error)) << text;
    JobSpec spec;
    EXPECT_FALSE(ParseJobSpec(v, &spec, &error)) << "accepted: " << text;
    EXPECT_FALSE(error.empty());
  }
}

TEST(JobSpecTest, ArtifactFileNameCarriesLabelAndHashPrefix) {
  JobSpec sweep;
  sweep.kind = JobKind::kSweep;
  sweep.apps = {apps::AppKind::kTemp, apps::AppKind::kDma};
  const std::string hash(64, 'a');
  EXPECT_EQ(ArtifactFileName(sweep, hash), "sweep-temp+dma-aaaaaaaaaaaa.json");

  JobSpec lint;
  lint.kind = JobKind::kLint;
  lint.source_name = "dir/sub/war dma!.ec";
  EXPECT_EQ(ArtifactFileName(lint, hash), "lint-war-dma--aaaaaaaaaaaa.json");

  // Same app, different config: the hash prefix keeps the names collision-free.
  JobSpec other = sweep;
  other.seed = 99;
  EXPECT_NE(ArtifactFileName(sweep, ContentHash(sweep)),
            ArtifactFileName(other, ContentHash(other)));
}

// --- jobspec: execution matches the library entry points -----------------------------

TEST(JobSpecTest, ExecuteSpecMatchesLibraryOutputs) {
  JobSpec spec;
  spec.kind = JobKind::kTrace;
  spec.apps = {apps::AppKind::kTemp};
  spec.runtimes = {apps::RuntimeKind::kEaseio};
  const JobOutcome outcome = ExecuteSpec(spec);
  ASSERT_TRUE(outcome.ok) << outcome.error;

  obs::TraceJob job;
  job.config.app = apps::AppKind::kTemp;
  job.config.runtime = apps::RuntimeKind::kEaseio;
  job.config.cap_sample_period_us = spec.cap_sample_us;
  job.want_profile = true;
  EXPECT_EQ(outcome.artifact, obs::ExecuteTraceJob(job).profile_json + "\n");

  // Determinism: a second execution yields identical bytes.
  EXPECT_EQ(ExecuteSpec(spec).artifact, outcome.artifact);
}

TEST(JobSpecTest, ExecuteSpecReportsLintCompileFailure) {
  JobSpec spec;
  spec.kind = JobKind::kLint;
  spec.source = "task { this is not easec";
  const JobOutcome outcome = ExecuteSpec(spec);
  EXPECT_FALSE(outcome.ok);
  EXPECT_NE(outcome.error.find("compile failed"), std::string::npos);
}

// --- cache ---------------------------------------------------------------------------

TEST(CacheTest, HitReturnsByteIdenticalArtifact) {
  TempDir dir("cache-hit");
  ResultCache cache(dir.str(), 0);
  const std::string artifact = "{\"x\":1}\nsecond line, stored verbatim\n";
  const std::string hash(64, '1');
  cache.Put(hash, "sweep", artifact);
  std::string got, kind;
  ASSERT_TRUE(cache.Get(hash, &got, &kind));
  EXPECT_EQ(got, artifact);
  EXPECT_EQ(kind, "sweep");
  EXPECT_FALSE(cache.Get(std::string(64, '2'), &got));
  const CacheStats stats = cache.Stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.puts, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(CacheTest, PersistsAcrossReopen) {
  TempDir dir("cache-reopen");
  const std::string hash(64, '3');
  {
    ResultCache cache(dir.str(), 0);
    cache.Put(hash, "trace", "artifact-bytes\n");
  }
  ResultCache reopened(dir.str(), 0);
  std::string got;
  ASSERT_TRUE(reopened.Get(hash, &got));
  EXPECT_EQ(got, "artifact-bytes\n");
}

TEST(CacheTest, EvictsLeastRecentlyUsedUnderCap) {
  TempDir dir("cache-lru");
  // Cap of 25 bytes holds two 10-byte artifacts, not three.
  ResultCache cache(dir.str(), 25);
  const std::string a(64, 'a'), b(64, 'b'), c(64, 'c');
  cache.Put(a, "k", std::string(10, 'A'));
  cache.Put(b, "k", std::string(10, 'B'));
  std::string got;
  ASSERT_TRUE(cache.Get(a, &got));  // a is now more recent than b
  cache.Put(c, "k", std::string(10, 'C'));
  EXPECT_TRUE(cache.Contains(a));
  EXPECT_FALSE(cache.Contains(b)) << "b was least recently used";
  EXPECT_TRUE(cache.Contains(c));
  EXPECT_EQ(cache.Stats().evictions, 1u);
  EXPECT_LE(cache.Stats().bytes, 25u);
}

TEST(CacheTest, DiscardsTruncatedObjectsOnLoad) {
  TempDir dir("cache-torn");
  const std::string hash(64, '7');
  {
    ResultCache cache(dir.str(), 0);
    cache.Put(hash, "k", "full artifact contents\n");
  }
  // Simulate a torn write: truncate the object behind the index's back.
  std::ofstream(dir.str() + "/objects/" + hash + ".json", std::ios::trunc) << "x";
  ResultCache reopened(dir.str(), 0);
  std::string got;
  EXPECT_FALSE(reopened.Get(hash, &got));
  EXPECT_EQ(reopened.Stats().entries, 0u);
}

// --- runner --------------------------------------------------------------------------

// Collects runner events and lets tests wait for a given job state.
class EventLog {
 public:
  void Add(const JobEvent& event) {
    std::lock_guard<std::mutex> lock(mu_);
    events_.push_back(event);
    cv_.notify_all();
  }
  JobRunner::EventSink Sink() {
    return [this](const JobEvent& event) { Add(event); };
  }
  // Blocks until job `id` reports `state`.
  void Await(uint64_t id, const std::string& state) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] {
      for (const JobEvent& e : events_) {
        if (e.job_id == id && e.state == state) {
          return true;
        }
      }
      return false;
    });
  }
  std::vector<JobEvent> Snapshot() {
    std::lock_guard<std::mutex> lock(mu_);
    return events_;
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<JobEvent> events_;
};

JobSpec QuickTraceSpec(uint64_t seed) {
  JobSpec spec;
  spec.kind = JobKind::kTrace;
  spec.apps = {apps::AppKind::kTemp};
  spec.runtimes = {apps::RuntimeKind::kEaseio};
  spec.seed = seed;
  return spec;
}

// A job that takes ~100ms: long enough that it is reliably still in flight when
// the test calls Stop() a few microseconds after observing "running".
JobSpec SlowSweepSpec(uint64_t seed) {
  JobSpec spec;
  spec.kind = JobKind::kSweep;
  spec.apps = {apps::AppKind::kTemp};
  spec.runtimes = {apps::RuntimeKind::kEaseio};
  spec.runs = 1000;
  spec.seed = seed;
  return spec;
}

TEST(RunnerTest, ExecutesCachesAndDedupes) {
  TempDir cache_dir("runner-cache");
  TempDir results_dir("runner-results");
  fs::create_directories(results_dir.str());
  ResultCache cache(cache_dir.str(), 0);
  EventLog log;
  JobRunner::Options options;
  options.workers = 2;
  options.results_dir = results_dir.str();
  JobRunner runner(&cache, options, log.Sink());
  runner.Start();

  const JobSpec spec = QuickTraceSpec(5);
  const auto first = runner.Submit(spec);
  EXPECT_FALSE(first.cached);
  log.Await(first.job_id, "done");

  // Identical resubmission: new job, completed immediately from the cache, same
  // artifact bytes.
  const auto second = runner.Submit(spec);
  EXPECT_TRUE(second.cached);
  EXPECT_NE(second.job_id, first.job_id);
  EXPECT_EQ(second.hash, first.hash);
  std::string a1, a2;
  ASSERT_TRUE(runner.GetArtifact(first.job_id, &a1));
  ASSERT_TRUE(runner.GetArtifact(second.job_id, &a2));
  EXPECT_EQ(a1, a2);
  EXPECT_EQ(a1, ExecuteSpec(spec).artifact);

  // The results-dir export exists under the collision-safe name.
  JobInfo info;
  ASSERT_TRUE(runner.GetJob(first.job_id, &info));
  EXPECT_EQ(info.artifact_file, ArtifactFileName(spec, first.hash));
  EXPECT_TRUE(fs::exists(fs::path(results_dir.str()) / info.artifact_file));

  // Event ordering for the executed job: queued before running before done.
  uint64_t queued_seq = 0, running_seq = 0, done_seq = 0;
  for (const JobEvent& e : log.Snapshot()) {
    if (e.job_id != first.job_id) {
      continue;
    }
    if (e.state == "queued") queued_seq = e.seq;
    if (e.state == "running") running_seq = e.seq;
    if (e.state == "done") done_seq = e.seq;
  }
  EXPECT_LT(queued_seq, running_seq);
  EXPECT_LT(running_seq, done_seq);
  runner.Stop();
}

TEST(RunnerTest, DrainPersistsQueuedJobsAndResumes) {
  TempDir cache_dir("runner-drain");
  const std::string queue_path = cache_dir.str() + "/queue.json";
  ResultCache cache(cache_dir.str(), 0);
  EventLog log;
  JobRunner::Options options;
  options.workers = 1;
  options.queue_path = queue_path;
  std::vector<std::string> hashes;
  {
    JobRunner runner(&cache, options, log.Sink());
    runner.Start();
    // One worker: A runs; B and C wait in the queue.
    const auto a = runner.Submit(SlowSweepSpec(11));
    const auto b = runner.Submit(SlowSweepSpec(2000));
    const auto c = runner.Submit(SlowSweepSpec(4000));
    hashes = {a.hash, b.hash, c.hash};
    log.Await(a.job_id, "running");
    runner.Stop();
    // The in-flight job finished (it is in the cache or failed); none were lost:
    // every job is either cached or persisted in the queue file.
  }
  std::string queue_json;
  {
    std::ifstream in(queue_path);
    ASSERT_TRUE(in.good()) << "queued jobs must be persisted on drain";
    std::string line;
    while (std::getline(in, line)) {
      queue_json += line;
    }
  }
  size_t persisted = 0;
  for (const std::string& hash : hashes) {
    if (!cache.Contains(hash)) {
      ++persisted;
    }
  }
  EXPECT_GE(persisted, 1u) << "with one worker, at least one job was still queued";

  // A fresh runner resumes the persisted queue and completes everything.
  EventLog log2;
  JobRunner runner2(&cache, options, log2.Sink());
  runner2.Start();
  for (int i = 0; i < 2000 && runner2.QueuedCount() + runner2.RunningCount() > 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  for (const std::string& hash : hashes) {
    EXPECT_TRUE(cache.Contains(hash));
  }
  EXPECT_FALSE(fs::exists(queue_path)) << "the queue file is consumed on resume";
  runner2.Stop();
}

TEST(RunnerTest, InFlightDuplicateSubmissionsAttach) {
  TempDir cache_dir("runner-dedup");
  ResultCache cache(cache_dir.str(), 0);
  EventLog log;
  JobRunner::Options options;
  options.workers = 1;
  JobRunner runner(&cache, options, log.Sink());
  // Not started: submissions stay queued, so the duplicate reliably attaches.
  const auto first = runner.Submit(QuickTraceSpec(21));
  const auto dup = runner.Submit(QuickTraceSpec(21));
  EXPECT_TRUE(dup.deduped);
  EXPECT_EQ(dup.job_id, first.job_id);
  runner.Start();
  log.Await(first.job_id, "done");
  runner.Stop();
}

}  // namespace
}  // namespace easeio::daemon
