// Additional coverage: LEA fully-connected/argmax reference checks, regional
// privatizer introspection, EaseC Exclude execution, radio payload checksums, and
// device copy helpers.

#include <sstream>

#include <gtest/gtest.h>

#include "apps/reference.h"
#include "apps/runtime_factory.h"
#include "core/regional.h"
#include "easec/program.h"
#include "kernel/engine.h"
#include "sim/device.h"
#include "sim/failure.h"

namespace easeio {
namespace {

namespace k = easeio::kernel;

sim::DeviceConfig Config() {
  sim::DeviceConfig config;
  config.seed = 1;
  return config;
}

TEST(LeaMore, FullyConnectedMatchesReference) {
  sim::NeverFailScheduler never;
  sim::Device dev(Config(), never);
  dev.Begin();
  constexpr uint32_t kIn = 12, kOut = 3;
  const uint32_t src = dev.mem().AllocSram("src", kIn * 2);
  const uint32_t w = dev.mem().AllocSram("w", kIn * kOut * 2);
  const uint32_t dst = dev.mem().AllocSram("dst", kOut * 2);
  std::vector<int16_t> in(kIn), weights(kIn * kOut);
  for (uint32_t i = 0; i < kIn; ++i) {
    in[i] = static_cast<int16_t>(200 * i - 900);
    dev.mem().WriteI16(src + 2 * i, in[i]);
  }
  for (uint32_t i = 0; i < weights.size(); ++i) {
    weights[i] = static_cast<int16_t>((i * 997) % 4001 - 2000);
    dev.mem().WriteI16(w + 2 * i, weights[i]);
  }
  dev.lea().FullyConnected(dev, src, w, dst, kIn, kOut);
  const auto expect = apps::ref::FullyConnected(in, weights, kOut);
  for (uint32_t o = 0; o < kOut; ++o) {
    EXPECT_EQ(dev.mem().ReadI16(dst + 2 * o), expect[o]) << o;
  }
}

TEST(LeaMore, MaxIndexFindsTheArgmax) {
  sim::NeverFailScheduler never;
  sim::Device dev(Config(), never);
  dev.Begin();
  const uint32_t src = dev.mem().AllocSram("src", 10);
  const uint32_t dst = dev.mem().AllocSram("dst", 2);
  const int16_t values[5] = {-5, 40, 12, 40, -2};
  for (uint32_t i = 0; i < 5; ++i) {
    dev.mem().WriteI16(src + 2 * i, values[i]);
  }
  dev.lea().MaxIndex(dev, src, 5, dst);
  EXPECT_EQ(dev.mem().ReadI16(dst), 1);  // first maximum wins
}

TEST(RegionalMore, CollectFlagAddrsEnumeratesEveryRegion) {
  sim::NeverFailScheduler never;
  sim::Device dev(Config(), never);
  k::NvManager nv(dev.mem());
  rt::RegionalPrivatizer regional;
  regional.Bind(dev, nv);
  const k::NvSlotId a = nv.Define("a", 2);
  regional.SetTaskRegions(3, {{a}, {}, {a}});
  EXPECT_EQ(regional.RegionCount(3), 3u);
  EXPECT_EQ(regional.TotalRegions(), 3u);
  std::vector<uint32_t> addrs;
  regional.CollectFlagAddrs(3, &addrs);
  EXPECT_EQ(addrs.size(), 3u);
  regional.CollectFlagAddrs(99, &addrs);  // unknown task: no change
  EXPECT_EQ(addrs.size(), 3u);
}

TEST(EasecExclude, ExcludedDmaRunsAsAlwaysInTheVm) {
  // An Exclude-annotated NV->SRAM transfer must re-run each attempt without touching
  // the privatization buffer, and the program must still complete correctly.
  constexpr const char* kSource = R"(
__nv int16 coef[8];
__nv int16 out;
__sram int16 stage[8];
task t() {
  int16 i = 0;
  while (i < 8) { coef[i] = i + 1; i = i + 1; }
  _DMA_copy(&stage[0], &coef[0], 16, Exclude);
  int16 s = 0;
  i = 0;
  while (i < 8) { s = s + stage[i]; i = i + 1; }
  out = s;
  end_task;
}
)";
  const easec::CompileResult compiled = easec::Compile(kSource);
  ASSERT_TRUE(compiled.ok) << compiled.errors;
  EXPECT_EQ(compiled.analysis.private_dma_bytes, 0u);

  sim::ScriptedScheduler sched({900, 1900}, 500);
  sim::Device dev(Config(), sched);
  k::NvManager nv(dev.mem());
  auto rt = apps::MakeRuntime(apps::RuntimeKind::kEaseio);
  rt->Bind(dev, nv);
  easec::InstantiatedProgram prog = easec::Instantiate(compiled, dev, *rt, nv);
  k::Engine engine;
  const k::RunResult r = engine.Run(dev, *rt, nv, prog.graph, prog.entry);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(dev.mem().ReadI16(nv.slot(prog.nv_slots[1]).addr), 36);  // 1+..+8
}

TEST(RadioMore, ChecksumReflectsPayloadAtSendTime) {
  sim::NeverFailScheduler never;
  sim::Device dev(Config(), never);
  dev.Begin();
  const uint32_t buf = dev.mem().AllocFram("p", 4);
  dev.mem().Write16(buf, 0x1234);
  dev.radio().Send(dev, buf, 4);
  dev.mem().Write16(buf, 0x9999);  // later mutation must not affect the logged packet
  dev.radio().Send(dev, buf, 4);
  ASSERT_EQ(dev.radio().sends(), 2u);
  EXPECT_NE(dev.radio().log()[0].checksum, dev.radio().log()[1].checksum);
}

TEST(DeviceMore, CpuCopyMovesBytesAndCharges) {
  sim::NeverFailScheduler never;
  sim::Device dev(Config(), never);
  dev.Begin();
  const uint32_t src = dev.mem().AllocFram("s", 32);
  const uint32_t dst = dev.mem().AllocSram("d", 32);
  dev.mem().Fill(src, 32, 0x3C);
  const uint64_t t0 = dev.clock().on_us();
  dev.CpuCopy(dst, src, 32);
  EXPECT_EQ(dev.mem().Read8(dst + 31), 0x3C);
  EXPECT_GE(dev.clock().on_us() - t0, 32u);  // >= 2 cycles per word
}

TEST(EngineMore, RebootListenersFire) {
  sim::ScriptedScheduler sched({500}, 100);
  sim::Device dev(Config(), sched);
  int fired = 0;
  dev.AddRebootListener([&fired] { ++fired; });
  dev.Begin();
  EXPECT_THROW(dev.Cpu(1000), sim::PowerFailure);
  dev.Reboot();
  EXPECT_EQ(fired, 1);
}

}  // namespace
}  // namespace easeio
