// Integration tests for the easeiod socket server: an in-process Server + JobRunner
// on a temp-dir Unix socket, exercised by real client connections. Covers the
// protocol round-trip for every op, malformed-frame error replies (connection stays
// usable), concurrent-watcher event ordering, and the SIGTERM graceful drain.

#include <gtest/gtest.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "daemon/cache.h"
#include "daemon/jobspec.h"
#include "daemon/jsonin.h"
#include "daemon/runner.h"
#include "daemon/server.h"
#include "obs/metrics.h"

namespace easeio::daemon {
namespace {

namespace fs = std::filesystem;

// A blocking test client speaking the newline-delimited-JSON protocol.
class TestClient {
 public:
  explicit TestClient(const std::string& socket_path) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    EXPECT_LT(socket_path.size(), sizeof(addr.sun_path));
    std::strncpy(addr.sun_path, socket_path.c_str(), sizeof(addr.sun_path) - 1);
    // The server may not have reached accept() yet; retry briefly.
    int rc = -1;
    for (int i = 0; i < 200; ++i) {
      rc = ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
      if (rc == 0) {
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    EXPECT_EQ(rc, 0) << "connect: " << std::strerror(errno);
  }
  ~TestClient() {
    if (fd_ >= 0) {
      ::close(fd_);
    }
  }

  void Send(const std::string& frame) {
    const std::string line = frame + "\n";
    size_t off = 0;
    while (off < line.size()) {
      const ssize_t n = ::write(fd_, line.data() + off, line.size() - off);
      ASSERT_GT(n, 0) << "write: " << std::strerror(errno);
      off += static_cast<size_t>(n);
    }
  }

  // Reads one newline-terminated frame; fails the test on timeout or EOF.
  std::string ReadFrame(int timeout_ms = 30000) {
    for (;;) {
      const size_t nl = buf_.find('\n');
      if (nl != std::string::npos) {
        const std::string frame = buf_.substr(0, nl);
        buf_.erase(0, nl + 1);
        return frame;
      }
      pollfd pfd{fd_, POLLIN, 0};
      const int rc = ::poll(&pfd, 1, timeout_ms);
      EXPECT_GT(rc, 0) << "timed out waiting for a frame";
      if (rc <= 0) {
        return "";
      }
      char chunk[4096];
      const ssize_t n = ::read(fd_, chunk, sizeof chunk);
      EXPECT_GT(n, 0) << "server closed the connection";
      if (n <= 0) {
        return "";
      }
      buf_.append(chunk, static_cast<size_t>(n));
    }
  }

  // Waits for the server to close the connection WITHOUT consuming buffered
  // frames — the caller is simulating a reader that stalled for good, and reading
  // here would drain the very backlog that must trip the outbuf cap. POLLRDHUP
  // sees the close behind the unread bytes.
  bool WaitForCloseUnread(int timeout_ms = 30000) {
    pollfd pfd{fd_, POLLRDHUP, 0};
    if (::poll(&pfd, 1, timeout_ms) <= 0) {
      return false;
    }
    return (pfd.revents & (POLLRDHUP | POLLHUP | POLLERR)) != 0;
  }

  // True when the server terminates the connection (EOF or reset) within the
  // timeout, discarding any frames still in flight.
  bool WaitForClose(int timeout_ms = 30000) {
    for (;;) {
      pollfd pfd{fd_, POLLIN, 0};
      if (::poll(&pfd, 1, timeout_ms) <= 0) {
        return false;
      }
      char chunk[4096];
      const ssize_t n = ::read(fd_, chunk, sizeof chunk);
      if (n <= 0) {
        return n == 0 || errno == ECONNRESET;
      }
    }
  }

  JsonValue SendAndParse(const std::string& frame) {
    Send(frame);
    JsonValue v;
    std::string error;
    const std::string reply = ReadFrame();
    EXPECT_TRUE(ParseJson(reply, &v, &error)) << error << " in: " << reply;
    return v;
  }

  int fd() const { return fd_; }

 private:
  int fd_ = -1;
  std::string buf_;
};

// Knobs for the daemon-under-test beyond the worker count; the metrics / buffer
// fields mirror the Server::Options of the same names.
struct DaemonTuning {
  uint32_t workers = 2;
  bool metrics = false;  // attach a registry to both the runner and the server
  uint64_t metrics_period_ms = 0;
  size_t max_client_outbuf = 64 * 1024 * 1024;
  size_t sndbuf_bytes = 0;
};

// One daemon instance (cache + runner + server + loop thread) in a fresh temp dir.
class DaemonFixture {
 public:
  explicit DaemonFixture(const char* tag, DaemonTuning tuning = {}) {
    static std::atomic<int> counter{0};
    dir_ = fs::temp_directory_path() /
           (std::string("easeiod-srv-test-") + tag + "-" + std::to_string(::getpid()) +
            "-" + std::to_string(counter++));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    cache_ = std::make_unique<ResultCache>((dir_ / "cache").string(), 0);
    JobRunner::Options roptions;
    roptions.workers = tuning.workers;
    roptions.queue_path = (dir_ / "queue.json").string();
    if (tuning.metrics) {
      roptions.metrics = &metrics_;
    }
    runner_ = std::make_unique<JobRunner>(
        cache_.get(), roptions,
        [this](const JobEvent& event) { server_->OnJobEvent(event); });
    Server::Options soptions;
    soptions.socket_path = (dir_ / "sock").string();
    soptions.shutdown_flag = &shutdown_flag_;
    if (tuning.metrics) {
      soptions.metrics = &metrics_;
    }
    soptions.metrics_period_ms = tuning.metrics_period_ms;
    soptions.max_client_outbuf = tuning.max_client_outbuf;
    soptions.sndbuf_bytes = tuning.sndbuf_bytes;
    server_ = std::make_unique<Server>(runner_.get(), cache_.get(), soptions);
    std::string error;
    listening_ = server_->Listen(&error);
    EXPECT_TRUE(listening_) << error;
    runner_->Start();
    loop_ = std::thread([this] { server_->Run(); });
  }

  ~DaemonFixture() {
    Shutdown();
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  // Signal-style shutdown: set the flag and poke the loop, as the SIGTERM handler
  // does, then drain the runner. Idempotent.
  void Shutdown() {
    if (loop_.joinable()) {
      shutdown_flag_.store(true);
      server_->WakeLoop();
      loop_.join();
    }
    runner_->Stop();
  }

  std::string socket_path() const { return (dir_ / "sock").string(); }
  std::string queue_path() const { return (dir_ / "queue.json").string(); }
  ResultCache& cache() { return *cache_; }
  JobRunner& runner() { return *runner_; }

  obs::Registry& metrics() { return metrics_; }

 private:
  fs::path dir_;
  std::atomic<bool> shutdown_flag_{false};
  obs::Registry metrics_;
  std::unique_ptr<ResultCache> cache_;
  std::unique_ptr<JobRunner> runner_;
  std::unique_ptr<Server> server_;
  bool listening_ = false;
  std::thread loop_;
};

const char kQuickTraceJob[] =
    R"({"op":"submit","job":{"kind":"trace","apps":["temp"],"runtimes":["easeio"]}})";

TEST(ServerTest, SubmitStatusResultsRoundTrip) {
  DaemonFixture daemon("roundtrip");
  TestClient client(daemon.socket_path());

  const JsonValue submit = client.SendAndParse(kQuickTraceJob);
  ASSERT_TRUE(submit.is_object());
  EXPECT_TRUE(submit.Find("ok")->AsBool());
  uint64_t id = 0;
  ASSERT_TRUE(submit.Find("id")->GetUint(&id));
  const std::string hash = submit.Find("hash")->AsString();
  EXPECT_EQ(hash.size(), 64u);
  EXPECT_FALSE(submit.Find("cached")->AsBool());

  // Poll status until the job is done.
  std::string state;
  for (int i = 0; i < 2000 && state != "done"; ++i) {
    const JsonValue status = client.SendAndParse(R"({"op":"status"})");
    ASSERT_TRUE(status.Find("ok")->AsBool());
    EXPECT_EQ(status.Find("schema")->AsString(), "easeio-daemon/1");
    for (const JsonValue& job : status.Find("jobs")->Items()) {
      uint64_t jid = 0;
      ASSERT_TRUE(job.Find("id")->GetUint(&jid));
      if (jid == id) {
        state = job.Find("state")->AsString();
      }
    }
    if (state != "done") {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  ASSERT_EQ(state, "done");

  // results returns the artifact — byte-identical to a direct library execution.
  const JsonValue results =
      client.SendAndParse(R"({"op":"results","id":)" + std::to_string(id) + "}");
  ASSERT_TRUE(results.Find("ok")->AsBool());
  JobSpec spec;
  spec.kind = JobKind::kTrace;
  spec.apps = {apps::AppKind::kTemp};
  spec.runtimes = {apps::RuntimeKind::kEaseio};
  EXPECT_EQ(results.Find("artifact")->AsString(), ExecuteSpec(spec).artifact);

  // An identical resubmission is a cache hit with the same hash.
  const JsonValue second = client.SendAndParse(kQuickTraceJob);
  EXPECT_TRUE(second.Find("ok")->AsBool());
  EXPECT_TRUE(second.Find("cached")->AsBool());
  EXPECT_EQ(second.Find("hash")->AsString(), hash);

  const JsonValue stats = client.SendAndParse(R"({"op":"cache-stats"})");
  EXPECT_TRUE(stats.Find("ok")->AsBool());
  uint64_t hits = 0;
  EXPECT_TRUE(stats.Find("cache")->Find("hits")->GetUint(&hits));
  EXPECT_GE(hits, 1u);
}

TEST(ServerTest, MalformedFramesGetErrorRepliesWithoutClosing) {
  DaemonFixture daemon("malformed");
  TestClient client(daemon.socket_path());

  const char* kBad[] = {
      "this is not json",
      "{\"op\":42}",
      "{}",
      R"({"op":"warp"})",
      R"({"op":"submit"})",
      R"({"op":"submit","job":{"kind":"sweep","bogus":1}})",
      R"({"op":"submit","job":{"kind":"sweep","runs":0}})",
      R"({"op":"results"})",
      R"({"op":"results","id":999999})",
      R"([1,2,3])",
  };
  for (const char* frame : kBad) {
    const JsonValue reply = client.SendAndParse(frame);
    ASSERT_TRUE(reply.is_object()) << frame;
    EXPECT_FALSE(reply.Find("ok")->AsBool()) << "accepted: " << frame;
    const JsonValue* error = reply.Find("error");
    ASSERT_NE(error, nullptr) << frame;
    EXPECT_FALSE(error->AsString().empty()) << frame;
  }

  // The connection survived all of it: a valid request still works.
  const JsonValue status = client.SendAndParse(R"({"op":"status"})");
  EXPECT_TRUE(status.Find("ok")->AsBool());

  // Protocol abuse — an unterminated frame over the size cap — is the one thing
  // that closes. MSG_NOSIGNAL: the server may close mid-send, which must surface
  // as EPIPE here, not kill the test with SIGPIPE.
  TestClient abuser(daemon.socket_path());
  const std::string chunk(64 * 1024, 'x');
  size_t sent = 0;
  while (sent < 9 * 1024 * 1024) {
    const ssize_t n = ::send(abuser.fd(), chunk.data(), chunk.size(), MSG_NOSIGNAL);
    if (n < 0) {
      break;  // the server already hung up on us
    }
    sent += static_cast<size_t>(n);
  }
  EXPECT_TRUE(abuser.WaitForClose());
}

TEST(ServerTest, ConcurrentWatchersSeeOrderedEvents) {
  DaemonFixture daemon("watchers", {.workers = 1});

  // Two watchers subscribe before any work exists; a third client submits two jobs.
  TestClient watcher_a(daemon.socket_path());
  TestClient watcher_b(daemon.socket_path());
  const JsonValue ack_a = watcher_a.SendAndParse(R"({"op":"watch"})");
  const JsonValue ack_b = watcher_b.SendAndParse(R"({"op":"watch","after":0})");
  EXPECT_TRUE(ack_a.Find("ok")->AsBool());
  EXPECT_TRUE(ack_b.Find("ok")->AsBool());

  TestClient submitter(daemon.socket_path());
  const JsonValue s1 = submitter.SendAndParse(
      R"({"op":"submit","job":{"kind":"trace","apps":["temp"],"runtimes":["easeio"],"seed":31}})");
  const JsonValue s2 = submitter.SendAndParse(
      R"({"op":"submit","job":{"kind":"trace","apps":["temp"],"runtimes":["easeio"],"seed":32}})");
  ASSERT_TRUE(s1.Find("ok")->AsBool());
  ASSERT_TRUE(s2.Find("ok")->AsBool());
  uint64_t id1 = 0, id2 = 0;
  ASSERT_TRUE(s1.Find("id")->GetUint(&id1));
  ASSERT_TRUE(s2.Find("id")->GetUint(&id2));

  // Each watcher must observe every transition of both jobs, in strictly increasing
  // seq order, with queued < running < done per job.
  const auto collect = [&](TestClient& watcher) {
    std::vector<JsonValue> events;
    size_t done_seen = 0;
    while (done_seen < 2) {
      const std::string frame = watcher.ReadFrame();
      ASSERT_FALSE(frame.empty());
      JsonValue v;
      std::string error;
      ASSERT_TRUE(ParseJson(frame, &v, &error)) << error << " in: " << frame;
      const JsonValue* event = v.Find("event");
      ASSERT_NE(event, nullptr) << frame;
      if (event->Find("state")->AsString() == "done" ||
          event->Find("state")->AsString() == "failed") {
        ++done_seen;
      }
      events.push_back(*event);
    }
    uint64_t prev_seq = 0;
    uint64_t queued1 = 0, running1 = 0, done1 = 0;
    uint64_t queued2 = 0, running2 = 0, done2 = 0;
    for (const JsonValue& event : events) {
      uint64_t seq = 0, jid = 0;
      ASSERT_TRUE(event.Find("seq")->GetUint(&seq));
      ASSERT_TRUE(event.Find("id")->GetUint(&jid));
      EXPECT_GT(seq, prev_seq) << "events must arrive in strictly increasing order";
      prev_seq = seq;
      const std::string state = event.Find("state")->AsString();
      uint64_t* slot = nullptr;
      if (jid == id1) {
        slot = state == "queued" ? &queued1 : state == "running" ? &running1 : &done1;
      } else if (jid == id2) {
        slot = state == "queued" ? &queued2 : state == "running" ? &running2 : &done2;
      }
      ASSERT_NE(slot, nullptr) << "event for an unknown job";
      *slot = seq;
    }
    EXPECT_TRUE(queued1 < running1 && running1 < done1);
    EXPECT_TRUE(queued2 < running2 && running2 < done2);
    // One worker: job 1 finishes before job 2 starts running.
    EXPECT_LT(done1, running2);
  };
  collect(watcher_a);
  collect(watcher_b);

  // A latecomer watching from seq 0 catches up on the full history with the same
  // ordering guarantees.
  TestClient late(daemon.socket_path());
  const JsonValue ack = late.SendAndParse(R"({"op":"watch","after":0})");
  EXPECT_TRUE(ack.Find("ok")->AsBool());
  collect(late);
}

TEST(ServerTest, SigtermDrainsWithoutLosingJobs) {
  DaemonFixture daemon("drain", {.workers = 1});
  TestClient client(daemon.socket_path());

  // Three distinct ~100ms jobs through one worker: the first is reliably still
  // running when the shutdown lands; the rest are still queued.
  std::vector<std::string> hashes;
  for (int seed = 1; seed <= 3; ++seed) {
    const JsonValue reply = client.SendAndParse(
        R"({"op":"submit","job":{"kind":"sweep","apps":["temp"],"runtimes":["easeio"],"runs":1000,"seed":)" +
        std::to_string(seed * 2000) + "}}");
    ASSERT_TRUE(reply.Find("ok")->AsBool());
    hashes.push_back(reply.Find("hash")->AsString());
  }

  // SIGTERM-style shutdown (flag + wake, exactly what the signal handler does).
  // The in-flight job finishes; the queued remainder is persisted.
  daemon.Shutdown();
  size_t cached = 0, persisted = 0;
  std::string queue_json;
  {
    std::ifstream in(daemon.queue_path());
    std::string line;
    while (std::getline(in, line)) {
      queue_json += line;
    }
  }
  for (const std::string& hash : hashes) {
    if (daemon.cache().Contains(hash)) {
      ++cached;
    } else {
      ++persisted;
    }
  }
  EXPECT_EQ(cached + persisted, hashes.size()) << "no job may be lost on drain";
  EXPECT_GE(cached, 1u) << "the in-flight job finishes before the drain completes";
  EXPECT_GE(persisted, 1u) << "with one worker, at least one job was still queued";

  // The persisted queue is a valid easeio-queue/1 document whose specs re-hash to
  // exactly the jobs missing from the cache — the drain invariant.
  JsonValue doc;
  std::string error;
  ASSERT_TRUE(ParseJson(queue_json, &doc, &error)) << error;
  EXPECT_EQ(doc.Find("schema")->AsString(), "easeio-queue/1") << queue_json;
  size_t rehash_matches = 0;
  for (const JsonValue& item : doc.Find("jobs")->Items()) {
    JobSpec spec;
    ASSERT_TRUE(ParseJobSpec(item, &spec, &error)) << error;
    for (const std::string& hash : hashes) {
      if (ContentHash(spec) == hash) {
        ++rehash_matches;
      }
    }
  }
  EXPECT_EQ(rehash_matches, persisted);

  // A restarted runner over the same cache and queue path resumes the persisted
  // jobs and completes everything.
  JobRunner::Options options;
  options.workers = 1;
  options.queue_path = daemon.queue_path();
  JobRunner resumed(&daemon.cache(), options, nullptr);
  resumed.Start();
  for (int i = 0; i < 4000 && resumed.QueuedCount() + resumed.RunningCount() > 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  resumed.Stop();
  for (const std::string& hash : hashes) {
    EXPECT_TRUE(daemon.cache().Contains(hash)) << "job lost across drain + resume";
  }
}

// Satellite (a) regression: a reply far larger than the connection's send buffer
// must arrive intact through the short-write / EAGAIN path, and a reader that
// delays while the server's outbuf is owed must not wedge the loop for anyone else.
TEST(ServerTest, LargeReplySurvivesShortWritesToADelayedReader) {
  // 4 KiB SO_SNDBUF against a ~80 KiB artifact: FlushClient is guaranteed to hit
  // EAGAIN mid-reply many times over.
  DaemonFixture daemon("shortwrite", {.sndbuf_bytes = 4096});

  const char kTimelineJob[] =
      R"({"op":"submit","job":{"kind":"trace","apps":["weather"],"runtimes":["easeio"],"timeline":true}})";
  TestClient submitter(daemon.socket_path());
  const JsonValue submit = submitter.SendAndParse(kTimelineJob);
  ASSERT_TRUE(submit.Find("ok")->AsBool());
  uint64_t id = 0;
  ASSERT_TRUE(submit.Find("id")->GetUint(&id));
  std::string artifact;
  for (int i = 0; i < 4000 && !daemon.runner().GetArtifact(id, &artifact); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_GT(artifact.size(), 32u * 1024) << "artifact too small to force short writes";

  // Request the artifact but do not read for a while: the kernel buffer fills, the
  // server's send blocks with EAGAIN, and the rest of the reply waits in outbuf.
  TestClient reader(daemon.socket_path());
  reader.Send(R"({"op":"results","id":)" + std::to_string(id) + "}");
  std::this_thread::sleep_for(std::chrono::milliseconds(200));

  // The loop is not wedged on the delayed reader: a second client round-trips.
  TestClient prober(daemon.socket_path());
  const JsonValue status = prober.SendAndParse(R"({"op":"status"})");
  EXPECT_TRUE(status.Find("ok")->AsBool());

  // Now drain the reply; every byte of the artifact must have survived.
  JsonValue reply;
  std::string error;
  ASSERT_TRUE(ParseJson(reader.ReadFrame(), &reply, &error)) << error;
  ASSERT_TRUE(reply.Find("ok")->AsBool());
  EXPECT_EQ(reply.Find("artifact")->AsString(), artifact);

  // The connection is still healthy after the marathon reply.
  const JsonValue again = reader.SendAndParse(R"({"op":"cache-stats"})");
  EXPECT_TRUE(again.Find("ok")->AsBool());
}

// Satellite (c): a watch subscriber that stops reading while periodic metrics
// frames accumulate must neither wedge the poll loop nor grow the daemon's memory
// without bound — it is dropped once its unsent backlog exceeds the cap, while
// every reading client stays served.
TEST(ServerTest, StalledWatcherUnderPeriodicMetricsIsDroppedNotWedging) {
  DaemonFixture daemon("slowwatch", {.metrics = true,
                                     .metrics_period_ms = 10,
                                     .max_client_outbuf = 64 * 1024,
                                     .sndbuf_bytes = 4096});

  // A healthy watcher proves the periodic stream works: after the ack it receives
  // a {"metrics":{...}} frame (no job events exist yet, so the first frames are
  // all metrics).
  TestClient healthy(daemon.socket_path());
  ASSERT_TRUE(healthy.SendAndParse(R"({"op":"watch"})").Find("ok")->AsBool());
  JsonValue frame;
  std::string error;
  ASSERT_TRUE(ParseJson(healthy.ReadFrame(), &frame, &error)) << error;
  const JsonValue* metrics_doc = frame.Find("metrics");
  ASSERT_NE(metrics_doc, nullptr);
  EXPECT_EQ(metrics_doc->Find("schema")->AsString(), "easeio-metrics/1");

  // From here on a drainer thread keeps the healthy watcher reading and counts
  // the frames it receives; draining is what distinguishes it from the stalled
  // peer, whose backlog only ever grows.
  std::atomic<uint64_t> healthy_frames{0};
  std::atomic<bool> healthy_closed{false};
  std::atomic<bool> stop_drainer{false};
  std::thread drainer([&] {
    while (!stop_drainer.load()) {
      pollfd pfd{healthy.fd(), POLLIN, 0};
      if (::poll(&pfd, 1, 50) <= 0) {
        continue;
      }
      char chunk[4096];
      const ssize_t n = ::read(healthy.fd(), chunk, sizeof chunk);
      if (n <= 0) {
        healthy_closed.store(true);
        return;
      }
      for (ssize_t i = 0; i < n; ++i) {
        if (chunk[i] == '\n') {
          healthy_frames.fetch_add(1);
        }
      }
    }
  });
  // An ASSERT below returns early; the drainer must still be joined.
  struct Joiner {
    std::thread& thread;
    std::atomic<bool>& stop;
    ~Joiner() {
      stop.store(true);
      thread.join();
    }
  } joiner{drainer, stop_drainer};

  // The stalled watcher subscribes and never reads again. Metrics frames are a
  // few KiB each at a 10ms period against a 64 KiB cap and a 4 KiB socket buffer:
  // the backlog overflows within a few hundred milliseconds.
  TestClient stalled(daemon.socket_path());
  stalled.Send(R"({"op":"watch"})");

  // Meanwhile the daemon keeps serving everyone else, round after round.
  TestClient prober(daemon.socket_path());
  for (int i = 0; i < 10; ++i) {
    const JsonValue status = prober.SendAndParse(R"({"op":"status"})");
    ASSERT_TRUE(status.Find("ok")->AsBool());
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }

  // The stalled client is eventually dropped (close, not a wedged loop). The wait
  // must not read: consuming the backlog would un-stall the client.
  EXPECT_TRUE(stalled.WaitForCloseUnread()) << "stalled watcher was never dropped";

  // And the healthy watcher keeps receiving frames after the eviction.
  const uint64_t before = healthy_frames.load();
  for (int i = 0; i < 400 && healthy_frames.load() == before; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GT(healthy_frames.load(), before);
  EXPECT_FALSE(healthy_closed.load());
}

// The metrics op: live registry contents in both exposition formats.
TEST(ServerTest, MetricsOpServesLiveRegistry) {
  DaemonFixture daemon("metrics-op", {.metrics = true});
  TestClient client(daemon.socket_path());

  // Run one quick job so the counters are visibly live, then wait for "done".
  const JsonValue submit = client.SendAndParse(kQuickTraceJob);
  ASSERT_TRUE(submit.Find("ok")->AsBool());
  uint64_t id = 0;
  ASSERT_TRUE(submit.Find("id")->GetUint(&id));
  std::string artifact;
  for (int i = 0; i < 4000 && !daemon.runner().GetArtifact(id, &artifact); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  const JsonValue reply = client.SendAndParse(R"({"op":"metrics"})");
  ASSERT_TRUE(reply.Find("ok")->AsBool());
  const JsonValue* doc = reply.Find("metrics");
  ASSERT_NE(doc, nullptr);
  EXPECT_EQ(doc->Find("schema")->AsString(), "easeio-metrics/1");
  // The per-kind counters reflect the finished job and the cache mirror is live.
  uint64_t trace_done = 0, cache_puts = 0;
  for (const JsonValue& metric : doc->Find("metrics")->Items()) {
    const std::string name = metric.Find("name")->AsString();
    if (name == "easeiod_jobs_done" &&
        metric.Find("labels")->Find("kind")->AsString() == "trace") {
      ASSERT_TRUE(metric.Find("value")->GetUint(&trace_done));
    } else if (name == "easeiod_cache_puts") {
      ASSERT_TRUE(metric.Find("value")->GetUint(&cache_puts));
    }
  }
  EXPECT_EQ(trace_done, 1u);
  EXPECT_EQ(cache_puts, 1u);

  // Prometheus exposition rides the same op with format=prometheus.
  const JsonValue prom =
      client.SendAndParse(R"({"op":"metrics","format":"prometheus"})");
  ASSERT_TRUE(prom.Find("ok")->AsBool());
  const std::string text = prom.Find("text")->AsString();
  EXPECT_NE(text.find("# TYPE easeiod_jobs_done counter"), std::string::npos);
  EXPECT_NE(text.find("easeiod_jobs_done{kind=\"trace\"} 1"), std::string::npos);

  // Unknown formats are an error; the connection survives.
  const JsonValue bad = client.SendAndParse(R"({"op":"metrics","format":"xml"})");
  EXPECT_FALSE(bad.Find("ok")->AsBool());
  EXPECT_TRUE(client.SendAndParse(R"({"op":"status"})").Find("ok")->AsBool());
}

// Without a registry attached, the metrics op reports a clean error.
TEST(ServerTest, MetricsOpWithoutRegistryIsAnError) {
  DaemonFixture daemon("metrics-off");
  TestClient client(daemon.socket_path());
  const JsonValue reply = client.SendAndParse(R"({"op":"metrics"})");
  EXPECT_FALSE(reply.Find("ok")->AsBool());
  EXPECT_TRUE(client.SendAndParse(R"({"op":"status"})").Find("ok")->AsBool());
}

TEST(ServerTest, ShutdownOpAcknowledgesThenExits) {
  DaemonFixture daemon("shutdown-op");
  TestClient client(daemon.socket_path());
  const JsonValue reply = client.SendAndParse(R"({"op":"shutdown"})");
  EXPECT_TRUE(reply.Find("ok")->AsBool());
  EXPECT_TRUE(client.WaitForClose()) << "the server closes connections after the ack";
  daemon.Shutdown();  // joins the loop thread (already exiting) and drains
}

}  // namespace
}  // namespace easeio::daemon
