// Tests for the obs metrics registry and its exposition formats: registration
// idempotence, histogram bucket math, per-worker shard folding determinism
// (integer sums commute, so totals cannot depend on worker count or fold order),
// and exact expected bytes for the easeio-metrics/1 JSON document and the
// Prometheus text format — byte-level determinism is the whole contract.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/metrics_export.h"

namespace easeio {
namespace {

TEST(MetricsRegistry, CounterAddAndValue) {
  obs::Registry reg;
  const obs::MetricId c = reg.Counter("requests_total");
  EXPECT_EQ(reg.Value(c), 0u);
  reg.Add(c, 3);
  reg.Add(c, 4);
  EXPECT_EQ(reg.Value(c), 7u);
}

TEST(MetricsRegistry, RegistrationIsIdempotentAndLabelOrderInsensitive) {
  obs::Registry reg;
  const obs::MetricId a = reg.Counter("hits", {{"app", "dma"}, {"engine", "snap"}});
  const obs::MetricId b = reg.Counter("hits", {{"engine", "snap"}, {"app", "dma"}});
  EXPECT_EQ(a, b);
  const obs::MetricId c = reg.Counter("hits", {{"app", "temp"}, {"engine", "snap"}});
  EXPECT_NE(a, c);
  reg.Add(a, 5);
  EXPECT_EQ(reg.Value(b), 5u);
  EXPECT_EQ(reg.Value(c), 0u);
}

TEST(MetricsRegistry, GaugeHoldsSignedValues) {
  obs::Registry reg;
  const obs::MetricId g = reg.Gauge("queue_depth");
  reg.Set(g, 42);
  EXPECT_EQ(reg.GaugeValue(g), 42);
  reg.Set(g, -7);
  EXPECT_EQ(reg.GaugeValue(g), -7);
}

TEST(MetricsRegistry, HistogramBucketsAreCumulativeWithInfLast) {
  obs::Registry reg;
  const obs::MetricId h = reg.Histogram("latency_us", {10, 100, 1000});
  reg.Observe(h, 5);     // bucket le=10
  reg.Observe(h, 10);    // inclusive upper bound: still le=10
  reg.Observe(h, 11);    // le=100
  reg.Observe(h, 5000);  // +Inf
  const std::vector<obs::Sample> samples = reg.Snapshot();
  ASSERT_EQ(samples.size(), 1u);
  const obs::Sample& s = samples[0];
  ASSERT_EQ(s.cumulative.size(), 4u);
  EXPECT_EQ(s.cumulative[0], 2u);
  EXPECT_EQ(s.cumulative[1], 3u);
  EXPECT_EQ(s.cumulative[2], 3u);
  EXPECT_EQ(s.cumulative[3], 4u);  // +Inf == count
  EXPECT_EQ(s.count, 4u);
  EXPECT_EQ(s.sum, 5u + 10u + 11u + 5000u);
  EXPECT_EQ(reg.Value(h), 4u);  // histogram Value() is the observation count
}

TEST(MetricsRegistry, ShardsFoldDeterministicallyAcrossWorkerCounts) {
  // The same logical work split across 1, 2, or 7 shards must produce identical
  // registry state — this is what makes metrics jobs-count-independent.
  std::vector<std::string> expositions;
  for (const int workers : {1, 2, 7}) {
    obs::Registry reg;
    const obs::MetricId c = reg.Counter("trials_total");
    const obs::MetricId h = reg.Histogram("trial_us", {50, 500});
    std::vector<std::thread> threads;
    for (int w = 0; w < workers; ++w) {
      threads.emplace_back([&, w] {
        obs::Registry::Shard shard(&reg);
        for (int i = w; i < 1000; i += workers) {
          shard.Add(c, 1);
          shard.Observe(h, static_cast<uint64_t>(i));
        }
        // Fold happens in the shard destructor, mirroring per-worker state
        // teardown in platform/parallel.
      });
    }
    for (std::thread& t : threads) t.join();
    EXPECT_EQ(reg.Value(c), 1000u);
    expositions.push_back(obs::MetricsToJson(reg));
  }
  EXPECT_EQ(expositions[0], expositions[1]);
  EXPECT_EQ(expositions[0], expositions[2]);
}

TEST(MetricsRegistry, ExplicitFoldDrainsAndResets) {
  obs::Registry reg;
  const obs::MetricId c = reg.Counter("n");
  obs::Registry::Shard shard(&reg);
  shard.Add(c, 5);
  EXPECT_EQ(reg.Value(c), 0u);  // not yet folded
  shard.Fold();
  EXPECT_EQ(reg.Value(c), 5u);
  shard.Fold();  // second fold must not double-count
  EXPECT_EQ(reg.Value(c), 5u);
}

TEST(MetricsExport, JsonDocumentIsCanonical) {
  obs::Registry reg;
  reg.Set(reg.Gauge("b_gauge"), -3);
  reg.Add(reg.Counter("a_counter", {{"k", "v"}}), 7);
  const obs::MetricId h = reg.Histogram("c_hist", {10});
  reg.Observe(h, 4);
  reg.Observe(h, 40);
  EXPECT_EQ(obs::MetricsToJson(reg),
            "{\"schema\":\"easeio-metrics/1\",\"metrics\":["
            "{\"name\":\"a_counter\",\"type\":\"counter\",\"labels\":{\"k\":\"v\"},"
            "\"value\":7},"
            "{\"name\":\"b_gauge\",\"type\":\"gauge\",\"labels\":{},\"value\":-3},"
            "{\"name\":\"c_hist\",\"type\":\"histogram\",\"labels\":{},"
            "\"buckets\":[{\"le\":10,\"count\":1},{\"le\":\"+Inf\",\"count\":2}],"
            "\"sum\":44,\"count\":2}"
            "]}");
}

TEST(MetricsExport, PrometheusTextFormat) {
  obs::Registry reg;
  reg.Add(reg.Counter("jobs_total", {{"kind", "sweep"}}), 2);
  reg.Add(reg.Counter("jobs_total", {{"kind", "lint"}}), 1);
  reg.Set(reg.Gauge("queue_depth"), 4);
  const obs::MetricId h = reg.Histogram("job_us", {100}, {{"kind", "sweep"}});
  reg.Observe(h, 50);
  reg.Observe(h, 5000);
  EXPECT_EQ(obs::MetricsToPrometheus(reg),
            "# TYPE job_us histogram\n"
            "job_us_bucket{kind=\"sweep\",le=\"100\"} 1\n"
            "job_us_bucket{kind=\"sweep\",le=\"+Inf\"} 2\n"
            "job_us_sum{kind=\"sweep\"} 5050\n"
            "job_us_count{kind=\"sweep\"} 2\n"
            "# TYPE jobs_total counter\n"
            "jobs_total{kind=\"lint\"} 1\n"
            "jobs_total{kind=\"sweep\"} 2\n"
            "# TYPE queue_depth gauge\n"
            "queue_depth 4\n");
}

TEST(MetricsExport, PrometheusEscapesLabelValues) {
  obs::Registry reg;
  reg.Add(reg.Counter("c", {{"path", "a\"b\\c\nd"}}), 1);
  EXPECT_EQ(obs::MetricsToPrometheus(reg),
            "# TYPE c counter\n"
            "c{path=\"a\\\"b\\\\c\\nd\"} 1\n");
}

TEST(MetricsExport, WriteMetricsFilePicksFormatByExtension) {
  obs::Registry reg;
  reg.Add(reg.Counter("n"), 1);
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "easeio_metrics_test";
  std::filesystem::create_directories(dir);
  const std::string json_path = (dir / "m.json").string();
  const std::string prom_path = (dir / "m.prom").string();
  ASSERT_TRUE(obs::WriteMetricsFile(reg, json_path));
  ASSERT_TRUE(obs::WriteMetricsFile(reg, prom_path));
  const auto slurp = [](const std::string& p) {
    std::ifstream in(p, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
  };
  EXPECT_EQ(slurp(json_path), obs::MetricsToJson(reg) + "\n");
  EXPECT_EQ(slurp(prom_path), obs::MetricsToPrometheus(reg));
  std::string error;
  EXPECT_FALSE(obs::WriteMetricsFile(reg, (dir / "no/such/dir.json").string(),
                                     &error));
  EXPECT_FALSE(error.empty());
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace easeio
