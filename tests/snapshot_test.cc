// Tests for the snapshot engine (PR: snapshot-at-reboot trial resumption):
//   * Memory::Snapshot/Restore round-trips FRAM bit-exactly and rolls the allocation
//     cursor back past post-snapshot allocations;
//   * Memory::OnReboot/Reset volatility and fresh-state semantics;
//   * Device::Reset-based per-worker stack reuse is indistinguishable from fresh
//     construction across consecutive trials;
//   * snapshot-resumed depth-2 exploration produces byte-identical non-timing results
//     to full replay, for semantic and baseline runtimes (including Samoyed, whose
//     undo-log/shadow state rides the RuntimeSnapshot extra payload).

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "apps/registry.h"
#include "apps/runtime_factory.h"
#include "chk/explorer.h"
#include "kernel/engine.h"
#include "kernel/nv.h"
#include "sim/device.h"
#include "sim/failure.h"
#include "sim/memory.h"

namespace easeio {
namespace {

// --- Memory snapshot / restore / reset --------------------------------------------------

TEST(MemorySnapshot, FramRoundTripIsBitExact) {
  sim::Memory mem(1024, 4096);
  const uint32_t a = mem.AllocFram("a", 100);
  const uint32_t b = mem.AllocFram("b", 64);
  for (uint32_t i = 0; i < 100; ++i) {
    mem.Write8(a + i, static_cast<uint8_t>(i * 7 + 1));
  }
  mem.Fill(b, 64, 0x5A);

  const sim::MemorySnapshot snap = mem.Snapshot();

  // Mutate everything the snapshot covers: contents, cursor, allocation table.
  mem.Fill(a, 100, 0xEE);
  mem.Fill(b, 64, 0x01);
  const uint32_t late = mem.AllocFram("late", 32);
  mem.Fill(late, 32, 0x77);

  mem.Restore(snap);
  for (uint32_t i = 0; i < 100; ++i) {
    EXPECT_EQ(mem.Read8(a + i), static_cast<uint8_t>(i * 7 + 1)) << "offset " << i;
  }
  for (uint32_t i = 0; i < 64; ++i) {
    EXPECT_EQ(mem.Read8(b + i), 0x5A) << "offset " << i;
  }
  EXPECT_EQ(mem.allocations().size(), 2u);
  // The cursor rolled back: the next allocation re-hands the same address, and the
  // bytes the dead allocation dirtied read as zero again.
  const uint32_t again = mem.AllocFram("late2", 32);
  EXPECT_EQ(again, late);
  for (uint32_t i = 0; i < 32; ++i) {
    EXPECT_EQ(mem.Read8(again + i), 0) << "offset " << i;
  }
}

TEST(MemorySnapshot, OnRebootClearsSramKeepsFram) {
  sim::Memory mem(1024, 4096);
  const uint32_t s = mem.AllocSram("s", 16);
  const uint32_t f = mem.AllocFram("f", 16);
  mem.Fill(s, 16, 0xAB);
  mem.Fill(f, 16, 0xCD);
  EXPECT_EQ(mem.reboot_epoch(), 0u);

  mem.OnReboot();
  for (uint32_t i = 0; i < 16; ++i) {
    EXPECT_EQ(mem.Read8(s + i), 0) << "sram offset " << i;
    EXPECT_EQ(mem.Read8(f + i), 0xCD) << "fram offset " << i;
  }
  EXPECT_EQ(mem.reboot_epoch(), 1u);
}

TEST(MemorySnapshot, ResetReturnsToFreshState) {
  sim::Memory mem(1024, 4096);
  const uint32_t s = mem.AllocSram("s", 16);
  const uint32_t f = mem.AllocFram("f", 16);
  mem.Fill(s, 16, 0xAB);
  mem.Fill(f, 16, 0xCD);
  mem.OnReboot();

  mem.Reset();
  EXPECT_TRUE(mem.allocations().empty());
  EXPECT_EQ(mem.reboot_epoch(), 0u);
  EXPECT_EQ(mem.sram_free(), mem.sram_size());
  EXPECT_EQ(mem.fram_free(), mem.fram_size());
  // Re-allocation hands out the same base addresses, and the arena reads zero.
  EXPECT_EQ(mem.AllocSram("s2", 16), s);
  EXPECT_EQ(mem.AllocFram("f2", 16), f);
  for (uint32_t i = 0; i < 16; ++i) {
    EXPECT_EQ(mem.Read8(s + i), 0) << "sram offset " << i;
    EXPECT_EQ(mem.Read8(f + i), 0) << "fram offset " << i;
  }
}

// --- Device reset reuse -----------------------------------------------------------------

struct TrialResult {
  kernel::RunResult run;
  std::vector<uint8_t> output;
};

// Builds the runtime/app layer over `dev` (already fresh or Reset) and runs the DMA
// app under EaseIO with the given scripted schedule.
TrialResult DriveDmaTrial(sim::Device& dev) {
  kernel::NvManager nv(dev.mem());
  auto runtime = apps::MakeRuntime(apps::RuntimeKind::kEaseio);
  runtime->Bind(dev, nv);
  apps::AppHandle app = apps::BuildApp(apps::AppKind::kDma, dev, *runtime, nv);
  kernel::Engine engine;
  TrialResult r;
  r.run = engine.Run(dev, *runtime, nv, app.graph, app.entry);
  r.output = app.collect_output(dev);
  return r;
}

TEST(DeviceReset, ReusedStackMatchesFreshConstruction) {
  const std::vector<std::vector<uint64_t>> schedules = {{}, {900}, {900, 2100}};
  sim::DeviceConfig dev_config;

  // Reused path: one device, Reset between trials.
  sim::ScriptedScheduler reused_sched({}, 700);
  sim::Device reused(dev_config, reused_sched);
  for (const std::vector<uint64_t>& schedule : schedules) {
    reused_sched.Rescript(schedule, 700);
    reused.Reset(dev_config, reused_sched);
    const TrialResult got = DriveDmaTrial(reused);

    // Fresh path: everything constructed from scratch.
    sim::ScriptedScheduler fresh_sched(schedule, 700);
    sim::Device fresh(dev_config, fresh_sched);
    const TrialResult want = DriveDmaTrial(fresh);

    EXPECT_EQ(got.run.completed, want.run.completed);
    EXPECT_EQ(got.run.on_us, want.run.on_us);
    EXPECT_EQ(got.run.off_us, want.run.off_us);
    EXPECT_EQ(got.run.wall_us, want.run.wall_us);
    EXPECT_EQ(got.run.energy_j, want.run.energy_j);
    EXPECT_EQ(got.run.stats.power_failures, want.run.stats.power_failures);
    EXPECT_EQ(got.run.stats.tasks_committed, want.run.stats.tasks_committed);
    EXPECT_EQ(got.output, want.output);
  }
}

// --- Snapshot-resumed exploration equals full replay ------------------------------------

void ExpectModeEquivalence(apps::AppKind app, apps::RuntimeKind rt, uint32_t budget,
                           bool expect_resumes) {
  chk::ExploreConfig cfg;
  cfg.app = app;
  cfg.runtime = rt;
  cfg.depth = 2;
  cfg.budget = budget;
  cfg.jobs = 2;
  chk::ExploreConfig full = cfg;
  full.use_snapshot = false;

  const chk::ExploreResult snap_result = chk::Explore(cfg);
  const chk::ExploreResult full_result = chk::Explore(full);
  EXPECT_EQ(chk::ToJson(snap_result, /*include_timing=*/false),
            chk::ToJson(full_result, /*include_timing=*/false))
      << apps::ToString(app) << "/" << apps::ToString(rt);
  if (expect_resumes) {
    EXPECT_GT(snap_result.snapshot_resumes, 0u) << "snapshot fast path never taken";
    EXPECT_GT(snap_result.prefix_us_saved, 0u);
  }
  EXPECT_EQ(full_result.snapshot_resumes, 0u);
  EXPECT_EQ(full_result.prefix_us_saved, 0u);
}

TEST(SnapshotEngine, ResumedDepth2EqualsFullReplayEaseio) {
  ExpectModeEquivalence(apps::AppKind::kDma, apps::RuntimeKind::kEaseio, 160,
                        /*expect_resumes=*/true);
}

TEST(SnapshotEngine, ResumedDepth2EqualsFullReplayAlpaca) {
  ExpectModeEquivalence(apps::AppKind::kDma, apps::RuntimeKind::kAlpaca, 160,
                        /*expect_resumes=*/true);
}

TEST(SnapshotEngine, ResumedDepth2EqualsFullReplayInk) {
  ExpectModeEquivalence(apps::AppKind::kDma, apps::RuntimeKind::kInk, 160,
                        /*expect_resumes=*/true);
}

TEST(SnapshotEngine, ResumedDepth2EqualsFullReplaySamoyedWeather) {
  // Weather is the only app exercising I/O blocks, i.e. Samoyed's undo log and lazily
  // allocated FRAM shadows — the state that rides the RuntimeSnapshot extra payload.
  ExpectModeEquivalence(apps::AppKind::kWeather, apps::RuntimeKind::kSamoyed, 60,
                        /*expect_resumes=*/false);
}

}  // namespace
}  // namespace easeio
