// Tests for the snapshot engine (PR: snapshot-at-reboot trial resumption):
//   * Memory::Snapshot/Restore round-trips FRAM bit-exactly and rolls the allocation
//     cursor back past post-snapshot allocations;
//   * Memory::OnReboot/Reset volatility and fresh-state semantics;
//   * Device::Reset-based per-worker stack reuse is indistinguishable from fresh
//     construction across consecutive trials;
//   * snapshot-resumed depth-2 exploration produces byte-identical non-timing results
//     to full replay, for semantic and baseline runtimes (including Samoyed, whose
//     undo-log/shadow state rides the RuntimeSnapshot extra payload).

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "apps/registry.h"
#include "apps/runtime_factory.h"
#include "chk/explorer.h"
#include "kernel/engine.h"
#include "kernel/nv.h"
#include "sim/device.h"
#include "sim/failure.h"
#include "sim/memory.h"

namespace easeio {
namespace {

// --- Memory snapshot / restore / reset --------------------------------------------------

TEST(MemorySnapshot, FramRoundTripIsBitExact) {
  sim::Memory mem(1024, 4096);
  const uint32_t a = mem.AllocFram("a", 100);
  const uint32_t b = mem.AllocFram("b", 64);
  for (uint32_t i = 0; i < 100; ++i) {
    mem.Write8(a + i, static_cast<uint8_t>(i * 7 + 1));
  }
  mem.Fill(b, 64, 0x5A);

  const sim::MemorySnapshot snap = mem.Snapshot();

  // Mutate everything the snapshot covers: contents, cursor, allocation table.
  mem.Fill(a, 100, 0xEE);
  mem.Fill(b, 64, 0x01);
  const uint32_t late = mem.AllocFram("late", 32);
  mem.Fill(late, 32, 0x77);

  mem.Restore(snap);
  for (uint32_t i = 0; i < 100; ++i) {
    EXPECT_EQ(mem.Read8(a + i), static_cast<uint8_t>(i * 7 + 1)) << "offset " << i;
  }
  for (uint32_t i = 0; i < 64; ++i) {
    EXPECT_EQ(mem.Read8(b + i), 0x5A) << "offset " << i;
  }
  EXPECT_EQ(mem.allocations().size(), 2u);
  // The cursor rolled back: the next allocation re-hands the same address, and the
  // bytes the dead allocation dirtied read as zero again.
  const uint32_t again = mem.AllocFram("late2", 32);
  EXPECT_EQ(again, late);
  for (uint32_t i = 0; i < 32; ++i) {
    EXPECT_EQ(mem.Read8(again + i), 0) << "offset " << i;
  }
}

TEST(MemorySnapshot, OnRebootClearsSramKeepsFram) {
  sim::Memory mem(1024, 4096);
  const uint32_t s = mem.AllocSram("s", 16);
  const uint32_t f = mem.AllocFram("f", 16);
  mem.Fill(s, 16, 0xAB);
  mem.Fill(f, 16, 0xCD);
  EXPECT_EQ(mem.reboot_epoch(), 0u);

  mem.OnReboot();
  for (uint32_t i = 0; i < 16; ++i) {
    EXPECT_EQ(mem.Read8(s + i), 0) << "sram offset " << i;
    EXPECT_EQ(mem.Read8(f + i), 0xCD) << "fram offset " << i;
  }
  EXPECT_EQ(mem.reboot_epoch(), 1u);
}

TEST(MemorySnapshot, ResetReturnsToFreshState) {
  sim::Memory mem(1024, 4096);
  const uint32_t s = mem.AllocSram("s", 16);
  const uint32_t f = mem.AllocFram("f", 16);
  mem.Fill(s, 16, 0xAB);
  mem.Fill(f, 16, 0xCD);
  mem.OnReboot();

  mem.Reset();
  EXPECT_TRUE(mem.allocations().empty());
  EXPECT_EQ(mem.reboot_epoch(), 0u);
  EXPECT_EQ(mem.sram_free(), mem.sram_size());
  EXPECT_EQ(mem.fram_free(), mem.fram_size());
  // Re-allocation hands out the same base addresses, and the arena reads zero.
  EXPECT_EQ(mem.AllocSram("s2", 16), s);
  EXPECT_EQ(mem.AllocFram("f2", 16), f);
  for (uint32_t i = 0; i < 16; ++i) {
    EXPECT_EQ(mem.Read8(s + i), 0) << "sram offset " << i;
    EXPECT_EQ(mem.Read8(f + i), 0) << "fram offset " << i;
  }
}

// Regression: Restore used to skip the allocation table when the sizes matched,
// leaving a stale table whose entries could differ in address, kind, and size. A
// pooled snapshot restored onto a stack that re-registered a same-*count* layout must
// replace the table unconditionally.
TEST(MemorySnapshot, RestoreReplacesSameSizeAllocationTable) {
  sim::Memory mem(1024, 4096);
  const uint32_t a = mem.AllocFram("a", 64);
  mem.Fill(a, 64, 0x42);
  const sim::MemorySnapshot snap = mem.Snapshot();

  // Rebuild a different world with the same allocation *count*: one SRAM entry.
  mem.Reset();
  mem.AllocSram("b", 32);
  ASSERT_EQ(mem.allocations().size(), snap.allocations.size());

  mem.Restore(snap);
  ASSERT_EQ(mem.allocations().size(), 1u);
  EXPECT_EQ(mem.allocations()[0].name, "a");
  EXPECT_EQ(mem.allocations()[0].addr, a);
  EXPECT_EQ(mem.allocations()[0].size, 64u);
  EXPECT_EQ(mem.allocations()[0].kind, sim::MemKind::kFram);
  for (uint32_t i = 0; i < 64; ++i) {
    ASSERT_EQ(mem.Read8(a + i), 0x42) << "offset " << i;
  }
}

// Satellite check: a snapshot whose fram buffer was truncated or padded relative to
// its own fram_used (torn by a buggy consumer mutating the buffer by hand) must abort
// loudly instead of restoring a silently corrupt arena.
TEST(MemorySnapshotDeathTest, TornSnapshotRestoreAborts) {
  sim::Memory mem(1024, 4096);
  const uint32_t a = mem.AllocFram("a", 64);
  mem.Fill(a, 64, 0x42);
  sim::MemorySnapshot snap = mem.Snapshot();
  snap.fram.pop_back();
  EXPECT_DEATH(mem.Restore(snap), "torn snapshot");
}

// Property test: a snapshot buffer recycled through SnapshotInto (dirty-page skip
// logic engaged) must stay byte-equal to a from-scratch full copy, and restoring it
// must reproduce the whole FRAM arena byte-for-byte — across interleaved writes,
// restores, allocation-cursor movement, and fram_used growth between fills.
TEST(MemorySnapshot, SnapshotIntoDirtyPageReuseMatchesFullCopy) {
  sim::Memory mem(1024, 16 * 1024);
  const uint32_t base = mem.AllocFram("arena", 4096);
  sim::MemorySnapshot pooled;  // recycled across every fill below

  uint64_t rng = 0x9E3779B97F4A7C15ull;
  auto next = [&rng]() {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };

  for (int round = 0; round < 20; ++round) {
    // Sparse scattered writes: a few pages dirty, most clean.
    for (int w = 0; w < 8; ++w) {
      mem.Write8(base + static_cast<uint32_t>(next() % 4096),
                 static_cast<uint8_t>(next()));
    }
    if (round == 10) {
      // Move the fram_used boundary between fills: stale sync stamps near and past
      // the old boundary must not survive.
      mem.AllocFram("grow", 512);
    }

    mem.SnapshotInto(pooled);
    const sim::MemorySnapshot full = mem.Snapshot();
    ASSERT_EQ(pooled.fram_used, full.fram_used) << "round " << round;
    ASSERT_EQ(pooled.fram, full.fram) << "round " << round;
    ASSERT_EQ(pooled.allocations.size(), full.allocations.size());

    // More writes after the fill, then roll back through the pooled snapshot and
    // compare the *entire* arena (allocated or not) against the full-copy ground
    // truth restored on the same state.
    for (int w = 0; w < 8; ++w) {
      mem.Write8(base + static_cast<uint32_t>(next() % 4096),
                 static_cast<uint8_t>(next()));
    }
    mem.Restore(pooled);
    const uint8_t* arena = mem.PeekBlock(sim::Memory::kFramBase, mem.fram_size());
    for (uint32_t i = 0; i < full.fram_used; ++i) {
      ASSERT_EQ(arena[i], full.fram[i]) << "round " << round << " byte " << i;
    }
    for (uint32_t i = full.fram_used; i < mem.fram_size(); ++i) {
      ASSERT_EQ(arena[i], 0) << "round " << round << " beyond-cursor byte " << i;
    }
  }
  // The skip logic must have actually engaged, or this test proves nothing.
  EXPECT_GT(mem.pages_skipped(), 0u);
}

// A pooled buffer refilled from a *different* Memory (foreign mem_uid) must take the
// full-copy path and restore correctly on the new owner.
TEST(MemorySnapshot, PooledBufferRefilledAcrossMemoriesFullCopies) {
  sim::MemorySnapshot pooled;

  sim::Memory first(1024, 4096);
  const uint32_t fa = first.AllocFram("fa", 128);
  first.Fill(fa, 128, 0xA1);
  first.SnapshotInto(pooled);

  sim::Memory second(1024, 4096);
  const uint32_t sa = second.AllocFram("sa", 64);
  const uint32_t sb = second.AllocFram("sb", 64);
  second.Fill(sa, 64, 0xB2);
  second.Fill(sb, 64, 0xC3);
  second.SnapshotInto(pooled);  // foreign buffer: stamps from `first` must not apply

  EXPECT_EQ(pooled.fram_used, second.fram_size() - second.fram_free());
  second.Fill(sa, 64, 0x00);
  second.Fill(sb, 64, 0xFF);
  second.Restore(pooled);
  for (uint32_t i = 0; i < 64; ++i) {
    ASSERT_EQ(second.Read8(sa + i), 0xB2) << "offset " << i;
    ASSERT_EQ(second.Read8(sb + i), 0xC3) << "offset " << i;
  }
}

// --- Device reset reuse -----------------------------------------------------------------

struct TrialResult {
  kernel::RunResult run;
  std::vector<uint8_t> output;
};

// Builds the runtime/app layer over `dev` (already fresh or Reset) and runs the DMA
// app under EaseIO with the given scripted schedule.
TrialResult DriveDmaTrial(sim::Device& dev) {
  kernel::NvManager nv(dev.mem());
  auto runtime = apps::MakeRuntime(apps::RuntimeKind::kEaseio);
  runtime->Bind(dev, nv);
  apps::AppHandle app = apps::BuildApp(apps::AppKind::kDma, dev, *runtime, nv);
  kernel::Engine engine;
  TrialResult r;
  r.run = engine.Run(dev, *runtime, nv, app.graph, app.entry);
  r.output = app.collect_output(dev);
  return r;
}

TEST(DeviceReset, ReusedStackMatchesFreshConstruction) {
  const std::vector<std::vector<uint64_t>> schedules = {{}, {900}, {900, 2100}};
  sim::DeviceConfig dev_config;

  // Reused path: one device, Reset between trials.
  sim::ScriptedScheduler reused_sched({}, 700);
  sim::Device reused(dev_config, reused_sched);
  for (const std::vector<uint64_t>& schedule : schedules) {
    reused_sched.Rescript(schedule, 700);
    reused.Reset(dev_config, reused_sched);
    const TrialResult got = DriveDmaTrial(reused);

    // Fresh path: everything constructed from scratch.
    sim::ScriptedScheduler fresh_sched(schedule, 700);
    sim::Device fresh(dev_config, fresh_sched);
    const TrialResult want = DriveDmaTrial(fresh);

    EXPECT_EQ(got.run.completed, want.run.completed);
    EXPECT_EQ(got.run.on_us, want.run.on_us);
    EXPECT_EQ(got.run.off_us, want.run.off_us);
    EXPECT_EQ(got.run.wall_us, want.run.wall_us);
    EXPECT_EQ(got.run.energy_j, want.run.energy_j);
    EXPECT_EQ(got.run.stats.power_failures, want.run.stats.power_failures);
    EXPECT_EQ(got.run.stats.tasks_committed, want.run.stats.tasks_committed);
    EXPECT_EQ(got.output, want.output);
  }
}

// --- Snapshot-resumed exploration equals full replay ------------------------------------

void ExpectModeEquivalence(apps::AppKind app, apps::RuntimeKind rt, uint32_t budget,
                           bool expect_resumes) {
  chk::ExploreConfig cfg;
  cfg.app = app;
  cfg.runtime = rt;
  cfg.depth = 2;
  cfg.budget = budget;
  cfg.jobs = 2;
  chk::ExploreConfig full = cfg;
  full.use_snapshot = false;

  const chk::ExploreResult snap_result = chk::Explore(cfg);
  const chk::ExploreResult full_result = chk::Explore(full);
  EXPECT_EQ(chk::ToJson(snap_result, /*include_timing=*/false),
            chk::ToJson(full_result, /*include_timing=*/false))
      << apps::ToString(app) << "/" << apps::ToString(rt);
  if (expect_resumes) {
    EXPECT_GT(snap_result.snapshot_resumes, 0u) << "snapshot fast path never taken";
    EXPECT_GT(snap_result.prefix_us_saved, 0u);
  }
  EXPECT_EQ(full_result.snapshot_resumes, 0u);
  EXPECT_EQ(full_result.prefix_us_saved, 0u);
}

TEST(SnapshotEngine, ResumedDepth2EqualsFullReplayEaseio) {
  ExpectModeEquivalence(apps::AppKind::kDma, apps::RuntimeKind::kEaseio, 160,
                        /*expect_resumes=*/true);
}

TEST(SnapshotEngine, ResumedDepth2EqualsFullReplayAlpaca) {
  ExpectModeEquivalence(apps::AppKind::kDma, apps::RuntimeKind::kAlpaca, 160,
                        /*expect_resumes=*/true);
}

TEST(SnapshotEngine, ResumedDepth2EqualsFullReplayInk) {
  ExpectModeEquivalence(apps::AppKind::kDma, apps::RuntimeKind::kInk, 160,
                        /*expect_resumes=*/true);
}

TEST(SnapshotEngine, ResumedDepth2EqualsFullReplaySamoyedWeather) {
  // Weather is the only app exercising I/O blocks, i.e. Samoyed's undo log and lazily
  // allocated FRAM shadows — the state that rides the RuntimeSnapshot extra payload.
  ExpectModeEquivalence(apps::AppKind::kWeather, apps::RuntimeKind::kSamoyed, 60,
                        /*expect_resumes=*/false);
}

}  // namespace
}  // namespace easeio
