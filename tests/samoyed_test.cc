// Tests for the Samoyed-style atomic-function baseline (extension beyond the paper's
// evaluated systems; see baselines/samoyed.h).

#include <gtest/gtest.h>

#include "baselines/samoyed.h"
#include "kernel/engine.h"
#include "sim/failure.h"

namespace easeio::baseline {
namespace {

namespace k = easeio::kernel;

sim::DeviceConfig Config() {
  sim::DeviceConfig config;
  config.seed = 1;
  return config;
}

TEST(Samoyed, AtomicFunctionRollsBackPartialNvWrites) {
  // An atomic function writes two NV variables; a failure between the writes must
  // roll the first one back before the task re-executes.
  sim::ScriptedScheduler sched({2000}, 100);
  sim::Device dev(Config(), sched);
  k::NvManager nv(dev.mem());
  SamoyedRuntime rt;
  rt.Bind(dev, nv);
  const k::NvSlotId a = nv.Define("a", 2);
  const k::NvSlotId b = nv.Define("b", 2);
  const k::IoBlockId atomic = rt.RegisterIoBlock({0, "atomic"});

  k::TaskGraph graph;
  const k::TaskId t = graph.Add("fn", [&](k::TaskCtx& ctx) {
    // The consistency contract: a and b always move together.
    ctx.IoBlockBegin(atomic);
    const uint16_t next = static_cast<uint16_t>(ctx.NvLoad16(a) + 1);
    ctx.NvStore16(a, next);
    ctx.Cpu(3000);  // the first attempt dies here, between the two writes
    ctx.NvStore16(b, next);
    ctx.IoBlockEnd(atomic);
    return k::kTaskDone;
  });

  k::Engine engine;
  const k::RunResult r = engine.Run(dev, rt, nv, graph, t);
  ASSERT_TRUE(r.completed);
  EXPECT_GE(rt.rollbacks(), 1u);
  EXPECT_EQ(dev.mem().Read16(nv.slot(a).addr), 1);  // incremented exactly once
  EXPECT_EQ(dev.mem().Read16(nv.slot(b).addr), 1);  // and the pair stayed consistent
}

TEST(Samoyed, WritesOutsideAtomicFunctionsAreUnprotected) {
  // The same increment pattern without an atomic function shows the raw task-model
  // double-apply (which Table 1 marks against every baseline).
  sim::ScriptedScheduler sched({1000}, 100);
  sim::Device dev(Config(), sched);
  k::NvManager nv(dev.mem());
  SamoyedRuntime rt;
  rt.Bind(dev, nv);
  const k::NvSlotId x = nv.Define("x", 2);

  k::TaskGraph graph;
  const k::TaskId t = graph.Add("inc", [&](k::TaskCtx& ctx) {
    ctx.NvStore16(x, static_cast<uint16_t>(ctx.NvLoad16(x) + 7));
    ctx.Cpu(2000);
    return k::kTaskDone;
  });

  k::Engine engine;
  engine.Run(dev, rt, nv, graph, t);
  EXPECT_EQ(dev.mem().Read16(nv.slot(x).addr), 14);
  EXPECT_EQ(rt.rollbacks(), 0u);
}

TEST(Samoyed, CommittedAtomicFunctionIsNotRolledBack) {
  sim::ScriptedScheduler sched({4000}, 100);
  sim::Device dev(Config(), sched);
  k::NvManager nv(dev.mem());
  SamoyedRuntime rt;
  rt.Bind(dev, nv);
  const k::NvSlotId a = nv.Define("a", 2);
  const k::IoBlockId atomic = rt.RegisterIoBlock({0, "atomic"});

  k::TaskGraph graph;
  const k::TaskId t = graph.Add("fn", [&](k::TaskCtx& ctx) {
    ctx.IoBlockBegin(atomic);
    ctx.NvStore16(a, static_cast<uint16_t>(ctx.NvLoad16(a) + 1));
    ctx.IoBlockEnd(atomic);  // commits well before the failure at t=4000
    ctx.Cpu(6000);           // dies here; re-execution re-runs the whole function
    return k::kTaskDone;
  });

  k::Engine engine;
  const k::RunResult r = engine.Run(dev, rt, nv, graph, t);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(rt.rollbacks(), 0u);
  // No rollback — but also no re-execution semantics: the committed function ran
  // again, double-applying the increment. Exactly the paper's Table 1 row.
  EXPECT_EQ(dev.mem().Read16(nv.slot(a).addr), 2);
}

TEST(Samoyed, AtomicIoStillReExecutes) {
  // Even inside atomic functions all I/O repeats on failure (no Single semantics).
  sim::ScriptedScheduler sched({3000}, 100);
  sim::Device dev(Config(), sched);
  k::NvManager nv(dev.mem());
  SamoyedRuntime rt;
  rt.Bind(dev, nv);
  const k::IoBlockId atomic = rt.RegisterIoBlock({0, "atomic"});
  const k::IoSiteId site = rt.RegisterIoSite({0, "send", 1, k::IoSemantic::kSingle});

  int sends = 0;
  k::TaskGraph graph;
  const k::TaskId t = graph.Add("fn", [&](k::TaskCtx& ctx) {
    ctx.IoBlockBegin(atomic);
    ctx.CallIo(site, [&sends](k::TaskCtx& c) {
      c.Cpu(500);
      ++sends;
      return static_cast<int16_t>(0);
    });
    ctx.Cpu(4000);
    ctx.IoBlockEnd(atomic);
    return k::kTaskDone;
  });

  k::Engine engine;
  const k::RunResult r = engine.Run(dev, rt, nv, graph, t);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(sends, 2);  // Samoyed ignores the Single annotation: the send repeated
}

}  // namespace
}  // namespace easeio::baseline
