// Unit tests for the task kernel: NV management, the engine's all-or-nothing task
// semantics, control-transfer durability, the non-termination guard, and the base
// runtime's redundancy accounting — plus the baselines' privatization behaviour.

#include <gtest/gtest.h>

#include "baselines/alpaca.h"
#include "baselines/ink.h"
#include "kernel/engine.h"
#include "sim/failure.h"

namespace easeio::kernel {
namespace {

sim::DeviceConfig Config(uint64_t seed = 1) {
  sim::DeviceConfig config;
  config.seed = seed;
  return config;
}

// A trivially observable runtime.
class PlainRuntime : public Runtime {
 public:
  const char* name() const override { return "plain"; }
};

TEST(NvManager, DefinesAndResolvesSlots) {
  sim::NeverFailScheduler never;
  sim::Device dev(Config(), never);
  NvManager nv(dev.mem());
  const NvSlotId a = nv.Define("x", 4);
  const NvSlotId b = nv.Define("y", 2);
  EXPECT_NE(nv.slot(a).addr, nv.slot(b).addr);
  EXPECT_EQ(nv.slot(a).size, 4u);
  EXPECT_EQ(nv.slot(b).name, "y");
}

TEST(Engine, RunsTaskChainToCompletion) {
  sim::NeverFailScheduler never;
  sim::Device dev(Config(), never);
  NvManager nv(dev.mem());
  PlainRuntime rt;
  rt.Bind(dev, nv);
  const NvSlotId out = nv.Define("out", 2);

  TaskGraph graph;
  const TaskId t1 = graph.Add("one", [&](TaskCtx& ctx) {
    ctx.NvStore16(out, 1);
    return static_cast<TaskId>(1);
  });
  graph.Add("two", [&](TaskCtx& ctx) {
    ctx.NvStore16(out, static_cast<uint16_t>(ctx.NvLoad16(out) + 10));
    return kTaskDone;
  });

  Engine engine;
  const RunResult r = engine.Run(dev, rt, nv, graph, t1);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.stats.tasks_committed, 2u);
  EXPECT_EQ(dev.mem().Read16(nv.slot(out).addr), 11);
}

TEST(Engine, InterruptedTaskRestartsFromTheTop) {
  sim::ScriptedScheduler sched({1000}, 100);
  sim::Device dev(Config(), sched);
  NvManager nv(dev.mem());
  PlainRuntime rt;
  rt.Bind(dev, nv);
  const NvSlotId attempts = nv.Define("attempts", 2);

  TaskGraph graph;
  const TaskId t = graph.Add("work", [&](TaskCtx& ctx) {
    ctx.NvStore16(attempts, static_cast<uint16_t>(ctx.NvLoad16(attempts) + 1));
    ctx.Cpu(2000);  // the first attempt dies inside this
    return kTaskDone;
  });

  Engine engine;
  const RunResult r = engine.Run(dev, rt, nv, graph, t);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.stats.power_failures, 1u);
  EXPECT_EQ(dev.mem().Read16(nv.slot(attempts).addr), 2);  // body ran twice
}

TEST(Engine, ControlTransferIsPartOfCommit) {
  // A failure inside task B must re-enter B, never re-run (committed) task A.
  sim::ScriptedScheduler sched({3000}, 100);
  sim::Device dev(Config(), sched);
  NvManager nv(dev.mem());
  PlainRuntime rt;
  rt.Bind(dev, nv);
  const NvSlotId a_runs = nv.Define("a", 2);
  const NvSlotId b_runs = nv.Define("b", 2);

  TaskGraph graph;
  const TaskId ta = graph.Add("A", [&](TaskCtx& ctx) {
    ctx.NvStore16(a_runs, static_cast<uint16_t>(ctx.NvLoad16(a_runs) + 1));
    ctx.Cpu(1000);
    return static_cast<TaskId>(1);
  });
  graph.Add("B", [&](TaskCtx& ctx) {
    ctx.NvStore16(b_runs, static_cast<uint16_t>(ctx.NvLoad16(b_runs) + 1));
    ctx.Cpu(3000);  // dies here on the first attempt
    return kTaskDone;
  });

  Engine engine;
  const RunResult r = engine.Run(dev, rt, nv, graph, ta);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(dev.mem().Read16(nv.slot(a_runs).addr), 1);
  EXPECT_EQ(dev.mem().Read16(nv.slot(b_runs).addr), 2);
}

TEST(Engine, DetectsNonTermination) {
  // A task needing more on-time than any single power cycle can deliver: the paper's
  // non-termination hazard (Section 3.5). The engine's guard aborts the run.
  sim::UniformTimerScheduler sched(5000, 20000, 200, 1000);
  sim::Device dev(Config(), sched);
  NvManager nv(dev.mem());
  PlainRuntime rt;
  rt.Bind(dev, nv);

  TaskGraph graph;
  const TaskId t = graph.Add("hog", [&](TaskCtx& ctx) {
    ctx.Cpu(50'000);  // longer than the 20 ms maximum interval
    return kTaskDone;
  });

  Engine engine(RunConfig{.max_on_us = 2'000'000});
  const RunResult r = engine.Run(dev, rt, nv, graph, t);
  EXPECT_FALSE(r.completed);
  EXPECT_GT(r.stats.power_failures, 50u);
}

TEST(RuntimeBase, CountsRedundantExecutionsPerIncarnation) {
  sim::NeverFailScheduler never;
  sim::Device dev(Config(), never);
  NvManager nv(dev.mem());
  PlainRuntime rt;
  rt.Bind(dev, nv);
  const IoSiteId site = rt.RegisterIoSite({0, "s", 1});
  TaskCtx ctx(dev, rt, nv);
  ctx.SetCurrentTaskForTest(0);
  dev.Begin();

  auto op = [](TaskCtx& c) {
    c.Cpu(10);
    return static_cast<int16_t>(1);
  };
  rt.CallIo(ctx, site, 0, op);
  rt.CallIo(ctx, site, 0, op);  // same incarnation: redundant
  EXPECT_EQ(dev.stats().io_executions, 2u);
  EXPECT_EQ(dev.stats().io_redundant, 1u);

  rt.OnTaskCommit(ctx);
  rt.CallIo(ctx, site, 0, op);  // new incarnation: fresh work
  EXPECT_EQ(dev.stats().io_redundant, 1u);
}

// --- Baselines ------------------------------------------------------------------------------

TEST(Alpaca, WarVariableIsRestoredOnReExecution) {
  // The classic WAR pattern x = f(x): without privatization a re-executed task would
  // double-apply the update.
  sim::ScriptedScheduler sched({2000}, 100);
  sim::Device dev(Config(), sched);
  NvManager nv(dev.mem());
  baseline::AlpacaRuntime rt;
  rt.Bind(dev, nv);
  const NvSlotId x = nv.Define("x", 2);
  rt.SetTaskWarVars(0, {x});

  TaskGraph graph;
  const TaskId t = graph.Add("inc", [&](TaskCtx& ctx) {
    ctx.NvStore16(x, static_cast<uint16_t>(ctx.NvLoad16(x) + 7));
    ctx.Cpu(3000);  // first attempt dies here, after the increment
    return kTaskDone;
  });

  Engine engine;
  const RunResult r = engine.Run(dev, rt, nv, graph, t);
  EXPECT_TRUE(r.completed);
  EXPECT_GE(r.stats.power_failures, 1u);
  EXPECT_EQ(dev.mem().Read16(nv.slot(x).addr), 7);  // exactly one increment committed
}

TEST(Alpaca, UnprotectedVariableShowsTheRawTaskModel) {
  // The same pattern *without* the WAR declaration double-applies — this is why the
  // analysis matters, and what DMA-touched buffers suffer from (invisible to it).
  sim::ScriptedScheduler sched({2000}, 100);
  sim::Device dev(Config(), sched);
  NvManager nv(dev.mem());
  baseline::AlpacaRuntime rt;
  rt.Bind(dev, nv);
  const NvSlotId x = nv.Define("x", 2);

  TaskGraph graph;
  const TaskId t = graph.Add("inc", [&](TaskCtx& ctx) {
    ctx.NvStore16(x, static_cast<uint16_t>(ctx.NvLoad16(x) + 7));
    ctx.Cpu(3000);
    return kTaskDone;
  });

  Engine engine;
  engine.Run(dev, rt, nv, graph, t);
  EXPECT_EQ(dev.mem().Read16(nv.slot(x).addr), 14);  // the idempotence bug, reproduced
}

TEST(Ink, SharedVariablesSurviveReExecution) {
  sim::ScriptedScheduler sched({2000}, 100);
  sim::Device dev(Config(), sched);
  NvManager nv(dev.mem());
  baseline::InkRuntime rt;
  rt.Bind(dev, nv);
  const NvSlotId x = nv.Define("x", 2);
  rt.SetTaskSharedVars(0, {x});

  TaskGraph graph;
  const TaskId t = graph.Add("inc", [&](TaskCtx& ctx) {
    ctx.NvStore16(x, static_cast<uint16_t>(ctx.NvLoad16(x) + 7));
    ctx.Cpu(3000);
    return kTaskDone;
  });

  Engine engine;
  engine.Run(dev, rt, nv, graph, t);
  EXPECT_EQ(dev.mem().Read16(nv.slot(x).addr), 7);
}

TEST(Baselines, TranslationRedirectsOnlyDeclaredVars) {
  sim::NeverFailScheduler never;
  sim::Device dev(Config(), never);
  NvManager nv(dev.mem());
  baseline::AlpacaRuntime rt;
  rt.Bind(dev, nv);
  const NvSlotId prot = nv.Define("prot", 2);
  const NvSlotId raw = nv.Define("raw", 2);
  rt.SetTaskWarVars(0, {prot});
  TaskCtx ctx(dev, rt, nv);
  ctx.SetCurrentTaskForTest(0);
  EXPECT_NE(rt.TranslateNv(ctx, nv.slot(prot), 0), nv.slot(prot).addr);
  EXPECT_EQ(rt.TranslateNv(ctx, nv.slot(raw), 0), nv.slot(raw).addr);

  ctx.SetCurrentTaskForTest(1);  // another task: no redirection
  EXPECT_EQ(rt.TranslateNv(ctx, nv.slot(prot), 0), nv.slot(prot).addr);
}

TEST(Baselines, CodeSizeGrowsWithDeclarations) {
  sim::NeverFailScheduler never;
  sim::Device dev(Config(), never);
  NvManager nv(dev.mem());
  baseline::InkRuntime rt;
  rt.Bind(dev, nv);
  const uint32_t before = rt.CodeSizeBytes();
  rt.SetTaskSharedVars(0, {nv.Define("a", 2), nv.Define("b", 2)});
  EXPECT_GT(rt.CodeSizeBytes(), before);
}

}  // namespace
}  // namespace easeio::kernel
