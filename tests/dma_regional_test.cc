// Tests for EaseIO's memory-safe DMA handling (Section 4.3) and regional
// privatization (Sections 3.4, 4.4), including a faithful reproduction of the paper's
// Figure 2b and Figure 6 scenarios.

#include <gtest/gtest.h>

#include "core/easeio_runtime.h"
#include "core/regional.h"
#include "kernel/engine.h"
#include "sim/failure.h"

namespace easeio {
namespace {

namespace k = easeio::kernel;

class DmaRulesTest : public ::testing::Test {
 protected:
  DmaRulesTest()
      : scheduler_({}, 1000), dev_(MakeConfig(), scheduler_), nv_(dev_.mem()),
        ctx_(dev_, rt_, nv_) {
    rt_.Bind(dev_, nv_);
    ctx_.SetCurrentTaskForTest(0);
    dev_.Begin();
    nv_a_ = nv_.Define("a", 64);
    nv_b_ = nv_.Define("b", 64);
    sram_ = dev_.mem().AllocSram("s", 64);
    // Distinct source pattern.
    for (uint32_t i = 0; i < 32; ++i) {
      dev_.mem().Write16(nv_.slot(nv_a_).addr + 2 * i, static_cast<uint16_t>(100 + i));
    }
  }

  static sim::DeviceConfig MakeConfig() {
    sim::DeviceConfig config;
    config.seed = 1;
    return config;
  }

  void Fail() {
    dev_.Reboot();
    rt_.OnReboot();
  }

  uint16_t NvWord(k::NvSlotId slot, uint32_t i) {
    return dev_.mem().Read16(nv_.slot(slot).addr + 2 * i);
  }
  uint16_t SramWord(uint32_t i) { return dev_.mem().Read16(sram_ + 2 * i); }

  sim::ScriptedScheduler scheduler_;
  sim::Device dev_;
  k::NvManager nv_;
  rt::EaseioRuntime rt_;
  k::TaskCtx ctx_;
  k::NvSlotId nv_a_ = k::kNoSlot;
  k::NvSlotId nv_b_ = k::kNoSlot;
  uint32_t sram_ = 0;
};

TEST_F(DmaRulesTest, NvToNvIsSingle) {
  const k::DmaSiteId dma = rt_.RegisterDmaSite({0, "d"});
  rt_.DmaCopy(ctx_, dma, nv_.slot(nv_b_).addr, nv_.slot(nv_a_).addr, 64);
  EXPECT_TRUE(rt_.DmaDone(dma));
  EXPECT_EQ(NvWord(nv_b_, 5), 105);

  Fail();
  const uint64_t before = dev_.stats().dma_executions;
  rt_.DmaCopy(ctx_, dma, nv_.slot(nv_b_).addr, nv_.slot(nv_a_).addr, 64);
  EXPECT_EQ(dev_.stats().dma_executions, before);  // skipped: destination persists
  EXPECT_EQ(dev_.stats().dma_skipped, 1u);
}

TEST_F(DmaRulesTest, VolatileToVolatileIsAlways) {
  const uint32_t sram2 = dev_.mem().AllocSram("s2", 64);
  const k::DmaSiteId dma = rt_.RegisterDmaSite({0, "d"});
  dev_.mem().Write16(sram_, 77);
  rt_.DmaCopy(ctx_, dma, sram2, sram_, 64);
  Fail();
  // SRAM cleared: the transfer genuinely must re-run, and it does.
  const uint64_t before = dev_.stats().dma_executions;
  rt_.DmaCopy(ctx_, dma, sram2, sram_, 64);
  EXPECT_EQ(dev_.stats().dma_executions, before + 1);
}

TEST_F(DmaRulesTest, NvToVolatileIsPrivateAndSurvivesSourceClobber) {
  // The Figure 2b / FIR hazard: after the transfer completes, the source is
  // overwritten; the re-executed transfer must still deliver the *original* data.
  const k::DmaSiteId dma = rt_.RegisterDmaSite({0, "d"});
  rt_.DmaCopy(ctx_, dma, sram_, nv_.slot(nv_a_).addr, 64);
  EXPECT_EQ(SramWord(3), 103);

  // A later operation clobbers the source in NVM.
  for (uint32_t i = 0; i < 32; ++i) {
    dev_.mem().Write16(nv_.slot(nv_a_).addr + 2 * i, 0xDEAD);
  }
  Fail();
  rt_.DmaCopy(ctx_, dma, sram_, nv_.slot(nv_a_).addr, 64);
  EXPECT_EQ(SramWord(3), 103) << "phase-2 must read the pristine private copy";
}

TEST_F(DmaRulesTest, ExcludeSkipsPrivatization) {
  const k::DmaSiteId dma = rt_.RegisterDmaSite({0, "d", /*exclude=*/true});
  const uint64_t meta_before = dev_.mem().AllocatedBytes(sim::MemKind::kFram);
  rt_.DmaCopy(ctx_, dma, sram_, nv_.slot(nv_a_).addr, 64);
  // No private copy is taken: clobbering the source *is* visible after re-execution —
  // the programmer vouched the data is constant.
  dev_.mem().Write16(nv_.slot(nv_a_).addr + 6, 0xBEEF);
  Fail();
  rt_.DmaCopy(ctx_, dma, sram_, nv_.slot(nv_a_).addr, 64);
  EXPECT_EQ(SramWord(3), 0xBEEF);
  EXPECT_EQ(dev_.mem().AllocatedBytes(sim::MemKind::kFram), meta_before);
}

TEST_F(DmaRulesTest, RelatedIoForcesReExecution) {
  // Section 4.3.1: a Single (NV-destination) DMA that moves an Always operation's
  // output must re-run whenever that operation produced a new value.
  const k::IoSiteId sensor = rt_.RegisterIoSite({0, "sense", 1, k::IoSemantic::kAlways});
  const k::DmaSiteId dma = rt_.RegisterDmaSite({0, "d", false, sensor});

  int count = 0;
  auto reading = [&count](k::TaskCtx& ctx) {
    ctx.dev().Cpu(50);
    return static_cast<int16_t>(500 + count++);
  };
  const int16_t v1 = rt_.CallIo(ctx_, sensor, 0, reading);
  dev_.mem().Write16(nv_.slot(nv_a_).addr, static_cast<uint16_t>(v1));
  rt_.DmaCopy(ctx_, dma, nv_.slot(nv_b_).addr, nv_.slot(nv_a_).addr, 2);
  EXPECT_EQ(NvWord(nv_b_, 0), 500);

  Fail();
  const int16_t v2 = rt_.CallIo(ctx_, sensor, 0, reading);  // Always: new value
  dev_.mem().Write16(nv_.slot(nv_a_).addr, static_cast<uint16_t>(v2));
  rt_.DmaCopy(ctx_, dma, nv_.slot(nv_b_).addr, nv_.slot(nv_a_).addr, 2);
  EXPECT_EQ(NvWord(nv_b_, 0), 501) << "the fresh reading must reach NVM";
}

TEST_F(DmaRulesTest, PrivatizationBufferExhaustionIsAnError) {
  rt::EaseioRuntime small_rt(rt::EaseioConfig{.dma_priv_buffer_bytes = 32});
  sim::ScriptedScheduler sched({}, 1000);
  sim::Device dev(MakeConfig(), sched);
  k::NvManager nv(dev.mem());
  small_rt.Bind(dev, nv);
  const k::NvSlotId a = nv.Define("a", 64);
  const uint32_t s = dev.mem().AllocSram("s", 64);
  const k::DmaSiteId dma = small_rt.RegisterDmaSite({0, "d"});
  k::TaskCtx ctx(dev, small_rt, nv);
  ctx.SetCurrentTaskForTest(0);
  dev.Begin();
  // 64 bytes of Private data cannot fit a 32-byte buffer: the documented limit check.
  EXPECT_DEATH(small_rt.DmaCopy(ctx, dma, s, nv.slot(a).addr, 64),
               "privatization buffer exhausted");
}

// --- Regional privatization -------------------------------------------------------------

class RegionalTest : public DmaRulesTest {};

TEST_F(RegionalTest, Figure6ScenarioStaysConsistent) {
  // Task1 from Figure 6: z = b[0]; DMA(a[0] -> b[0]); t = b[0]; a[0] = z.
  // A failure after `a[0] = z` skips the completed Single DMA on re-execution; the
  // regional snapshots must still reproduce exactly the continuous-execution result.
  const k::DmaSiteId dma = rt_.RegisterDmaSite({0, "fig6"});
  rt_.SetTaskRegions(0, {{nv_b_}, {nv_a_, nv_b_}});

  dev_.mem().Write16(nv_.slot(nv_a_).addr, 11);  // a[0]
  dev_.mem().Write16(nv_.slot(nv_b_).addr, 22);  // b[0]

  auto run_task = [&](bool fail_at_end) {
    rt_.OnTaskBegin(ctx_);                                  // enters region 0
    const uint16_t z = ctx_.NvLoad16(nv_b_);                // region 0: z = b[0]
    rt_.DmaCopy(ctx_, dma, nv_.slot(nv_b_).addr, nv_.slot(nv_a_).addr, 2);
    const uint16_t t = ctx_.NvLoad16(nv_b_);                // region 1: t = b[0]
    (void)t;
    ctx_.NvStore16(nv_a_, z);                               // region 1: a[0] = z
    if (fail_at_end) {
      Fail();
      return false;
    }
    rt_.OnTaskCommit(ctx_);
    return true;
  };

  EXPECT_FALSE(run_task(/*fail_at_end=*/true));   // first attempt dies after a[0] = z
  EXPECT_TRUE(run_task(/*fail_at_end=*/false));   // re-execution completes

  // Continuous execution would leave: b[0] = 11 (copied from a), a[0] = 22 (old b[0]).
  EXPECT_EQ(NvWord(nv_b_, 0), 11);
  EXPECT_EQ(NvWord(nv_a_, 0), 22);
}

TEST_F(RegionalTest, RepeatedFailuresStillConverge) {
  const k::DmaSiteId dma = rt_.RegisterDmaSite({0, "fig6"});
  rt_.SetTaskRegions(0, {{nv_b_}, {nv_a_, nv_b_}});
  dev_.mem().Write16(nv_.slot(nv_a_).addr, 11);
  dev_.mem().Write16(nv_.slot(nv_b_).addr, 22);

  for (int attempt = 0; attempt < 5; ++attempt) {
    rt_.OnTaskBegin(ctx_);
    const uint16_t z = ctx_.NvLoad16(nv_b_);
    rt_.DmaCopy(ctx_, dma, nv_.slot(nv_b_).addr, nv_.slot(nv_a_).addr, 2);
    ctx_.NvStore16(nv_a_, z);
    Fail();  // die after the region-1 write, five times in a row
  }
  rt_.OnTaskBegin(ctx_);
  const uint16_t z = ctx_.NvLoad16(nv_b_);
  rt_.DmaCopy(ctx_, dma, nv_.slot(nv_b_).addr, nv_.slot(nv_a_).addr, 2);
  ctx_.NvStore16(nv_a_, z);
  rt_.OnTaskCommit(ctx_);

  EXPECT_EQ(NvWord(nv_b_, 0), 11);
  EXPECT_EQ(NvWord(nv_a_, 0), 22);
}

TEST_F(RegionalTest, RegionCountMustMatchDmaSites) {
  rt_.RegisterDmaSite({0, "d1"});
  rt_.RegisterDmaSite({0, "d2"});
  EXPECT_DEATH(rt_.SetTaskRegions(0, {{nv_a_}}), "N\\+1 regions");
}

TEST_F(RegionalTest, UndeclaredTasksRunWithoutRegionalMachinery) {
  // Tasks without declared regions pay nothing and work in place.
  rt_.OnTaskBegin(ctx_);
  ctx_.NvStore16(nv_a_, 7);
  rt_.OnTaskCommit(ctx_);
  EXPECT_EQ(NvWord(nv_a_, 0), 7);
}

}  // namespace
}  // namespace easeio
