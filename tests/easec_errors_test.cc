// Front-end error handling: the compiler must reject malformed and semantically
// invalid programs with useful diagnostics, recover enough to report several errors in
// one pass, and never crash on garbage input.

#include <gtest/gtest.h>

#include "easec/program.h"

namespace easeio::easec {
namespace {

std::string ErrorsFor(const std::string& source) {
  const CompileResult result = Compile(source);
  EXPECT_FALSE(result.ok) << "expected compile failure for:\n" << source;
  return result.errors;
}

TEST(Errors, EmptyProgram) {
  EXPECT_NE(ErrorsFor("").find("no tasks"), std::string::npos);
}

TEST(Errors, GlobalsOnlyProgram) {
  EXPECT_NE(ErrorsFor("__nv int16 x;").find("no tasks"), std::string::npos);
}

TEST(Errors, DuplicateTaskNames) {
  EXPECT_NE(ErrorsFor("task t() { end_task; } task t() { end_task; }")
                .find("duplicate task"),
            std::string::npos);
}

TEST(Errors, DuplicateNvNames) {
  EXPECT_NE(ErrorsFor("__nv int16 x; __nv int16 x; task t() { end_task; }")
                .find("duplicate __nv"),
            std::string::npos);
}

TEST(Errors, ZeroLengthArray) {
  EXPECT_NE(ErrorsFor("__nv int16 x[0]; task t() { end_task; }").find("zero-length"),
            std::string::npos);
}

TEST(Errors, UnknownNextTaskTarget) {
  EXPECT_NE(ErrorsFor("task t() { next_task(ghost); }").find("not a task"),
            std::string::npos);
}

TEST(Errors, UnknownIoFunction) {
  EXPECT_NE(
      ErrorsFor("task t() { int16 x = _call_IO(Sonar(), \"Always\"); end_task; }")
          .find("unknown I/O function"),
      std::string::npos);
}

TEST(Errors, WrongIoArity) {
  EXPECT_NE(ErrorsFor("task t() { int16 x = _call_IO(Temp(1), \"Always\"); end_task; }")
                .find("expects 0 argument"),
            std::string::npos);
}

TEST(Errors, SendNeedsNvBufferAndLiteralLength) {
  const std::string errors = ErrorsFor(R"(
__nv int16 buf[4];
task t() {
  int16 n = 4;
  _call_IO(Send(n, n), "Single");
  end_task;
}
)");
  EXPECT_NE(errors.find("__nv buffer"), std::string::npos);
  EXPECT_NE(errors.find("literal byte count"), std::string::npos);
}

TEST(Errors, TimelyWithoutWindow) {
  EXPECT_NE(ErrorsFor("task t() { int16 x = _call_IO(Temp(), \"Timely\"); end_task; }")
                .find("Timely window"),
            std::string::npos);
}

TEST(Errors, LocalRedefinition) {
  EXPECT_NE(ErrorsFor("task t() { int16 x; int16 x; end_task; }").find("redefinition"),
            std::string::npos);
}

TEST(Errors, SubscriptOnScalar) {
  EXPECT_NE(ErrorsFor("__nv int16 s; task t() { int16 x = s[1]; end_task; }")
                .find("not an __nv array"),
            std::string::npos);
}

TEST(Errors, WholeArrayAssignment) {
  EXPECT_NE(ErrorsFor("__nv int16 a[4]; task t() { a = 1; end_task; }")
                .find("whole array"),
            std::string::npos);
}

TEST(Errors, AddressOfLocal) {
  EXPECT_NE(ErrorsFor(R"(
__nv int16 b[4];
task t() {
  int16 x = 0;
  _DMA_copy(&b[0], &x, 2);
  end_task;
}
)")
                .find("must name an __nv"),
            std::string::npos);
}

TEST(Errors, DmaOperandsMustBeAddresses) {
  EXPECT_NE(ErrorsFor(R"(
__nv int16 a[4];
__nv int16 b[4];
task t() {
  _DMA_copy(b[0], a[0], 8);
  end_task;
}
)")
                .find("'&nv_var"),
            std::string::npos);
}

TEST(Errors, NestedRepeatWithCallIo) {
  EXPECT_NE(ErrorsFor(R"(
task t() {
  repeat (2) {
    repeat (3) {
      int16 x = _call_IO(Temp(), "Always");
    }
  }
  end_task;
}
)")
                .find("nested repeat"),
            std::string::npos);
}

TEST(Errors, GetTimeTakesNoArguments) {
  EXPECT_NE(ErrorsFor("task t() { int16 x = GetTime(1); end_task; }")
                .find("no arguments"),
            std::string::npos);
}

TEST(Errors, MultipleErrorsReportedTogether) {
  const std::string errors = ErrorsFor(R"(
task t() {
  ghost1 = 1;
  ghost2 = 2;
  end_task;
}
)");
  EXPECT_NE(errors.find("ghost1"), std::string::npos);
  EXPECT_NE(errors.find("ghost2"), std::string::npos);
}

TEST(Errors, GarbageInputDoesNotCrash) {
  const CompileResult a = Compile("@#$%^&*");
  EXPECT_FALSE(a.ok);
  const CompileResult b = Compile("task task task (((");
  EXPECT_FALSE(b.ok);
  const CompileResult c = Compile(std::string(1000, '{'));
  EXPECT_FALSE(c.ok);
}

TEST(Errors, DiagnosticsCarryLineNumbers) {
  const std::string errors = ErrorsFor("task t() {\n  ghost = 1;\n  end_task;\n}\n");
  EXPECT_NE(errors.find("2:"), std::string::npos);  // the error is on line 2
}

// --- def/use table (easelint's substrate) -------------------------------------------

TEST(DefUse, TableCoversEveryStatementInPreOrder) {
  const CompileResult r = Compile(R"(
__nv int16 a;
__nv int16 b[4];
__sram int16 s[4];
task t() {
  int16 x = a;
  b[1] = x;
  _DMA_copy(&s[0], &b[0], 8);
  a = b[x];
  next_task(u);
}
task u() {
  end_task;
}
)");
  ASSERT_TRUE(r.ok) << r.errors;
  const Analysis& an = r.analysis;
  ASSERT_EQ(an.def_use.size(), 6u);  // five statements in t, one in u

  const StmtDefUse& decl = an.def_use[0];  // int16 x = a;
  EXPECT_EQ(decl.kind, StmtKind::kDeclLocal);
  EXPECT_EQ(decl.task, 0u);
  EXPECT_EQ(decl.region, 0u);
  EXPECT_EQ(decl.local_defs, (std::vector<int32_t>{0}));
  EXPECT_EQ(decl.nv_uses, (std::vector<uint32_t>{0}));  // a

  const StmtDefUse& store = an.def_use[1];  // b[1] = x;
  EXPECT_EQ(store.kind, StmtKind::kAssign);
  EXPECT_EQ(store.nv_defs, (std::vector<uint32_t>{1}));  // b
  EXPECT_EQ(store.local_uses, (std::vector<int32_t>{0}));

  const StmtDefUse& dma = an.def_use[2];  // _DMA_copy(&s[0], &b[0], 8);
  EXPECT_EQ(dma.kind, StmtKind::kDma);
  ASSERT_EQ(dma.dma, 0u);
  EXPECT_EQ(an.dmas[0].src_nv, 1);  // b
  EXPECT_EQ(an.dmas[0].dst_nv, 2);  // s
  EXPECT_EQ(an.dmas[0].src_offset, 0);
  EXPECT_EQ(an.dmas[0].dst_offset, 0);
  EXPECT_TRUE(an.dmas[0].bytes_literal);

  const StmtDefUse& rmw = an.def_use[3];  // a = b[x];  (after the region boundary)
  EXPECT_EQ(rmw.region, 1u);
  EXPECT_EQ(rmw.nv_defs, (std::vector<uint32_t>{0}));   // a
  EXPECT_EQ(rmw.nv_uses, (std::vector<uint32_t>{1}));   // b
  EXPECT_EQ(rmw.local_uses, (std::vector<int32_t>{0}));

  const StmtDefUse& hop = an.def_use[4];  // next_task(u);
  EXPECT_EQ(hop.kind, StmtKind::kNextTask);
  EXPECT_EQ(hop.target_task, 1u);

  EXPECT_EQ(an.def_use[5].task, 1u);
  EXPECT_EQ(an.def_use[5].kind, StmtKind::kEndTask);
}

TEST(DefUse, RepeatBlockAndSiteContext) {
  const CompileResult r = Compile(R"(
__nv int16 out[4];
task t() {
  _IO_block_begin("Single");
  repeat (i, 4) {
    int16 v = _call_IO(Temp(), "Timely", 10);
    out[i] = v;
  }
  _IO_block_end;
  end_task;
}
)");
  ASSERT_TRUE(r.ok) << r.errors;
  const Analysis& an = r.analysis;

  const StmtDefUse* decl = nullptr;   // int16 v = _call_IO(...)
  const StmtDefUse* store = nullptr;  // out[i] = v
  for (const StmtDefUse& e : an.def_use) {
    if (e.kind == StmtKind::kDeclLocal) decl = &e;
    if (e.kind == StmtKind::kAssign) store = &e;
  }
  ASSERT_NE(decl, nullptr);
  ASSERT_NE(store, nullptr);

  EXPECT_EQ(decl->io_sites, (std::vector<uint32_t>{0}));
  EXPECT_EQ(decl->repeat_lanes, 4u);
  EXPECT_NE(decl->block, UINT32_MAX);  // inside the Single block
  EXPECT_EQ(store->repeat_lanes, 4u);
  EXPECT_EQ(store->nv_defs, (std::vector<uint32_t>{0}));
  // The store reads both the repeat counter and v.
  EXPECT_EQ(store->local_uses.size(), 2u);
  EXPECT_TRUE(decl->delay_cycles == 0u);
}

TEST(DefUse, DelayAndStmtIdLinkage) {
  CompileResult r = Compile(R"(
__nv int16 a;
task t() {
  delay(1234);
  a = 1;
  end_task;
}
)");
  ASSERT_TRUE(r.ok) << r.errors;
  ASSERT_EQ(r.analysis.def_use.size(), 3u);
  EXPECT_EQ(r.analysis.def_use[0].kind, StmtKind::kDelay);
  EXPECT_EQ(r.analysis.def_use[0].delay_cycles, 1234u);
  // Each AST statement carries the index of its def/use entry.
  ASSERT_EQ(r.ast.tasks.size(), 1u);
  for (uint32_t i = 0; i < r.ast.tasks[0].body.size(); ++i) {
    EXPECT_EQ(r.ast.tasks[0].body[i]->stmt_id, i);
  }
}

}  // namespace
}  // namespace easeio::easec
