// Front-end error handling: the compiler must reject malformed and semantically
// invalid programs with useful diagnostics, recover enough to report several errors in
// one pass, and never crash on garbage input.

#include <gtest/gtest.h>

#include "easec/program.h"

namespace easeio::easec {
namespace {

std::string ErrorsFor(const std::string& source) {
  const CompileResult result = Compile(source);
  EXPECT_FALSE(result.ok) << "expected compile failure for:\n" << source;
  return result.errors;
}

TEST(Errors, EmptyProgram) {
  EXPECT_NE(ErrorsFor("").find("no tasks"), std::string::npos);
}

TEST(Errors, GlobalsOnlyProgram) {
  EXPECT_NE(ErrorsFor("__nv int16 x;").find("no tasks"), std::string::npos);
}

TEST(Errors, DuplicateTaskNames) {
  EXPECT_NE(ErrorsFor("task t() { end_task; } task t() { end_task; }")
                .find("duplicate task"),
            std::string::npos);
}

TEST(Errors, DuplicateNvNames) {
  EXPECT_NE(ErrorsFor("__nv int16 x; __nv int16 x; task t() { end_task; }")
                .find("duplicate __nv"),
            std::string::npos);
}

TEST(Errors, ZeroLengthArray) {
  EXPECT_NE(ErrorsFor("__nv int16 x[0]; task t() { end_task; }").find("zero-length"),
            std::string::npos);
}

TEST(Errors, UnknownNextTaskTarget) {
  EXPECT_NE(ErrorsFor("task t() { next_task(ghost); }").find("not a task"),
            std::string::npos);
}

TEST(Errors, UnknownIoFunction) {
  EXPECT_NE(
      ErrorsFor("task t() { int16 x = _call_IO(Sonar(), \"Always\"); end_task; }")
          .find("unknown I/O function"),
      std::string::npos);
}

TEST(Errors, WrongIoArity) {
  EXPECT_NE(ErrorsFor("task t() { int16 x = _call_IO(Temp(1), \"Always\"); end_task; }")
                .find("expects 0 argument"),
            std::string::npos);
}

TEST(Errors, SendNeedsNvBufferAndLiteralLength) {
  const std::string errors = ErrorsFor(R"(
__nv int16 buf[4];
task t() {
  int16 n = 4;
  _call_IO(Send(n, n), "Single");
  end_task;
}
)");
  EXPECT_NE(errors.find("__nv buffer"), std::string::npos);
  EXPECT_NE(errors.find("literal byte count"), std::string::npos);
}

TEST(Errors, TimelyWithoutWindow) {
  EXPECT_NE(ErrorsFor("task t() { int16 x = _call_IO(Temp(), \"Timely\"); end_task; }")
                .find("Timely window"),
            std::string::npos);
}

TEST(Errors, LocalRedefinition) {
  EXPECT_NE(ErrorsFor("task t() { int16 x; int16 x; end_task; }").find("redefinition"),
            std::string::npos);
}

TEST(Errors, SubscriptOnScalar) {
  EXPECT_NE(ErrorsFor("__nv int16 s; task t() { int16 x = s[1]; end_task; }")
                .find("not an __nv array"),
            std::string::npos);
}

TEST(Errors, WholeArrayAssignment) {
  EXPECT_NE(ErrorsFor("__nv int16 a[4]; task t() { a = 1; end_task; }")
                .find("whole array"),
            std::string::npos);
}

TEST(Errors, AddressOfLocal) {
  EXPECT_NE(ErrorsFor(R"(
__nv int16 b[4];
task t() {
  int16 x = 0;
  _DMA_copy(&b[0], &x, 2);
  end_task;
}
)")
                .find("must name an __nv"),
            std::string::npos);
}

TEST(Errors, DmaOperandsMustBeAddresses) {
  EXPECT_NE(ErrorsFor(R"(
__nv int16 a[4];
__nv int16 b[4];
task t() {
  _DMA_copy(b[0], a[0], 8);
  end_task;
}
)")
                .find("'&nv_var"),
            std::string::npos);
}

TEST(Errors, NestedRepeatWithCallIo) {
  EXPECT_NE(ErrorsFor(R"(
task t() {
  repeat (2) {
    repeat (3) {
      int16 x = _call_IO(Temp(), "Always");
    }
  }
  end_task;
}
)")
                .find("nested repeat"),
            std::string::npos);
}

TEST(Errors, GetTimeTakesNoArguments) {
  EXPECT_NE(ErrorsFor("task t() { int16 x = GetTime(1); end_task; }")
                .find("no arguments"),
            std::string::npos);
}

TEST(Errors, MultipleErrorsReportedTogether) {
  const std::string errors = ErrorsFor(R"(
task t() {
  ghost1 = 1;
  ghost2 = 2;
  end_task;
}
)");
  EXPECT_NE(errors.find("ghost1"), std::string::npos);
  EXPECT_NE(errors.find("ghost2"), std::string::npos);
}

TEST(Errors, GarbageInputDoesNotCrash) {
  const CompileResult a = Compile("@#$%^&*");
  EXPECT_FALSE(a.ok);
  const CompileResult b = Compile("task task task (((");
  EXPECT_FALSE(b.ok);
  const CompileResult c = Compile(std::string(1000, '{'));
  EXPECT_FALSE(c.ok);
}

TEST(Errors, DiagnosticsCarryLineNumbers) {
  const std::string errors = ErrorsFor("task t() {\n  ghost = 1;\n  end_task;\n}\n");
  EXPECT_NE(errors.find("2:"), std::string::npos);  // the error is on line 2
}

}  // namespace
}  // namespace easeio::easec
