// Tests for the observability layer (src/obs): probe fan-out, the
// observation-is-free bit-identity contract, probe-stream well-formedness across all
// runtimes, timeline/profile serialization, and determinism.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/capture.h"
#include "obs/profile.h"
#include "obs/timeline.h"
#include "report/experiment.h"
#include "sim/device.h"
#include "sim/failure.h"

namespace easeio::obs {
namespace {

constexpr apps::RuntimeKind kAllRuntimes[] = {
    apps::RuntimeKind::kAlpaca, apps::RuntimeKind::kInk, apps::RuntimeKind::kSamoyed,
    apps::RuntimeKind::kEaseio, apps::RuntimeKind::kEaseioOp};

// --- Probe fan-out ----------------------------------------------------------------------

TEST(Probe, FanOutDeliversToEverySubscriber) {
  sim::NeverFailScheduler never;
  sim::Device dev(sim::DeviceConfig{}, never);
  std::vector<sim::ProbeEvent> a;
  std::vector<sim::ProbeEvent> b;
  dev.AddProbe([&a](const sim::ProbeEvent& e) { a.push_back(e); });
  dev.AddProbe([&b](const sim::ProbeEvent& e) { b.push_back(e); });
  EXPECT_TRUE(dev.has_probe());
  dev.Note(sim::ProbeKind::kIoExec, 7, 0, 1, 0);
  dev.Note(sim::ProbeKind::kTaskCommit, 3);
  // Events sit in the emission ring until a flush boundary; hand-emitted events must
  // be flushed explicitly (the engine flushes at the end of every drive).
  EXPECT_TRUE(a.empty());
  dev.FlushProbes();
  ASSERT_EQ(a.size(), 2u);
  ASSERT_EQ(b.size(), 2u);
  EXPECT_EQ(a[0].kind, sim::ProbeKind::kIoExec);
  EXPECT_EQ(a[0].id, 7u);
  EXPECT_EQ(a[0].a, 1u);
  EXPECT_EQ(b[1].kind, sim::ProbeKind::kTaskCommit);
  EXPECT_EQ(b[1].id, 3u);
}

TEST(Probe, BatchSinkSeesSameStreamAsPerEventAdapters) {
  sim::NeverFailScheduler never;
  sim::Device dev(sim::DeviceConfig{}, never);
  struct CountingSink final : sim::ProbeSink {
    std::vector<sim::ProbeEvent> events;
    size_t batches = 0;
    void OnProbeBatch(const sim::ProbeBatch& batch) override {
      ++batches;
      for (size_t i = 0; i < batch.count; ++i) {
        events.push_back(batch.Event(i));
      }
    }
  } sink;
  std::vector<sim::ProbeEvent> via_fn;
  dev.AddSink(&sink);
  dev.AddProbe([&via_fn](const sim::ProbeEvent& e) { via_fn.push_back(e); });
  // More events than one ring capacity: forces at least one mid-stream flush and
  // checks that batch boundaries never reorder or drop events.
  constexpr size_t kEmit = 1000;
  for (size_t i = 0; i < kEmit; ++i) {
    dev.Note(sim::ProbeKind::kNvWrite, static_cast<uint32_t>(i), 0, i, 2 * i);
  }
  dev.FlushProbes();
  ASSERT_EQ(sink.events.size(), kEmit);
  ASSERT_EQ(via_fn.size(), kEmit);
  EXPECT_GE(sink.batches, 2u);
  for (size_t i = 0; i < kEmit; ++i) {
    EXPECT_EQ(sink.events[i].id, i);
    EXPECT_EQ(sink.events[i].a, via_fn[i].a);
    EXPECT_EQ(sink.events[i].b, 2 * i);
  }
}

TEST(Probe, SetProbeRefusesToDropSubscribersAndNullClearsAll) {
  sim::NeverFailScheduler never;
  sim::Device dev(sim::DeviceConfig{}, never);
  std::vector<sim::ProbeEvent> a;
  std::vector<sim::ProbeEvent> b;
  dev.AddProbe([&a](const sim::ProbeEvent& e) { a.push_back(e); });
  // Installing over live subscribers used to drop them silently; now it aborts.
  EXPECT_DEATH(dev.set_probe([&b](const sim::ProbeEvent& e) { b.push_back(e); }),
               "drop existing probe subscribers");
  // set_probe(nullptr) clears every registration (flushing pending events first)...
  dev.Note(sim::ProbeKind::kIoExec, 1);
  dev.set_probe(nullptr);
  EXPECT_FALSE(dev.has_probe());
  EXPECT_EQ(a.size(), 1u);
  // ...after which the legacy single-subscriber install works again.
  dev.set_probe([&b](const sim::ProbeEvent& e) { b.push_back(e); });
  dev.Note(sim::ProbeKind::kIoExec, 2);
  dev.FlushProbes();
  EXPECT_EQ(a.size(), 1u);
  EXPECT_EQ(b.size(), 1u);
  EXPECT_EQ(b[0].id, 2u);
}

// --- Observation is free: instrumented == uninstrumented --------------------------------

// Everything a run produces that is not host-side observation: RunStats, timing,
// energy, consistency, radio traffic, app output bytes, and the final FRAM image.
struct RunFingerprint {
  report::ExperimentResult result;
  std::vector<uint8_t> fram;
};

RunFingerprint Fingerprint(const report::ExperimentConfig& config, bool instrumented,
                           std::vector<sim::ProbeEvent>* events = nullptr) {
  RunFingerprint fp;
  report::RunHooks hooks;
  if (instrumented) {
    hooks.probe = [events](const sim::ProbeEvent& e) {
      if (events != nullptr) {
        events->push_back(e);
      }
    };
  }
  hooks.inspect = [&fp](const report::RunStackView& view) {
    const sim::Memory& mem = view.dev.mem();
    fp.fram.resize(mem.fram_size());
    mem.ReadBlock(sim::Memory::kFramBase, mem.fram_size(), fp.fram.data());
  };
  std::unique_ptr<sim::Device> slot;
  fp.result = report::RunExperiment(config, slot, hooks);
  return fp;
}

void ExpectIdentical(const RunFingerprint& plain, const RunFingerprint& traced,
                     const std::string& label) {
  const sim::RunStats& p = plain.result.run.stats;
  const sim::RunStats& t = traced.result.run.stats;
  EXPECT_EQ(p.power_failures, t.power_failures) << label;
  EXPECT_EQ(p.tasks_committed, t.tasks_committed) << label;
  EXPECT_EQ(p.io_executions, t.io_executions) << label;
  EXPECT_EQ(p.io_redundant, t.io_redundant) << label;
  EXPECT_EQ(p.io_skipped, t.io_skipped) << label;
  EXPECT_EQ(p.dma_executions, t.dma_executions) << label;
  EXPECT_EQ(p.dma_redundant, t.dma_redundant) << label;
  EXPECT_EQ(p.dma_skipped, t.dma_skipped) << label;
  // Bit-identity, not tolerance: observation must charge zero cycles and energy.
  EXPECT_EQ(p.app_us, t.app_us) << label;
  EXPECT_EQ(p.overhead_us, t.overhead_us) << label;
  EXPECT_EQ(p.wasted_us, t.wasted_us) << label;
  EXPECT_EQ(p.app_j, t.app_j) << label;
  EXPECT_EQ(p.overhead_j, t.overhead_j) << label;
  EXPECT_EQ(p.wasted_j, t.wasted_j) << label;
  EXPECT_EQ(plain.result.run.completed, traced.result.run.completed) << label;
  EXPECT_EQ(plain.result.run.on_us, traced.result.run.on_us) << label;
  EXPECT_EQ(plain.result.run.off_us, traced.result.run.off_us) << label;
  EXPECT_EQ(plain.result.run.wall_us, traced.result.run.wall_us) << label;
  EXPECT_EQ(plain.result.run.energy_j, traced.result.run.energy_j) << label;
  EXPECT_EQ(plain.result.consistent, traced.result.consistent) << label;
  EXPECT_EQ(plain.result.radio_sends, traced.result.radio_sends) << label;
  EXPECT_EQ(plain.result.output, traced.result.output) << label;
  EXPECT_EQ(plain.fram, traced.fram) << label << ": final FRAM image differs";
}

TEST(Capture, InstrumentedRunIsBitIdenticalForEveryAppAndRuntime) {
  for (apps::AppKind app : apps::kAllApps) {
    for (apps::RuntimeKind rt : kAllRuntimes) {
      report::ExperimentConfig config;
      config.app = app;
      config.runtime = rt;
      config.seed = 7;
      // Capacitor sampling enabled on both sides: it may only ever emit events.
      config.cap_sample_period_us = 500;
      const std::string label = std::string(apps::ToString(app)) + "/" + apps::ToString(rt);
      std::vector<sim::ProbeEvent> events;
      const RunFingerprint plain = Fingerprint(config, false);
      const RunFingerprint traced = Fingerprint(config, true, &events);
      EXPECT_FALSE(events.empty()) << label;
      ExpectIdentical(plain, traced, label);
    }
  }
}

// --- Probe-stream well-formedness -------------------------------------------------------

void ExpectWellFormed(const CapturedRun& run, const std::string& label) {
  const sim::RunStats& stats = run.result.run.stats;
  uint64_t prev_us = 0;
  uint64_t reboot_ordinal = 0;
  bool attempt_open = false;
  uint32_t attempt_task = 0;
  for (const sim::ProbeEvent& e : run.events) {
    // The probe clock is the on-clock: it never runs backwards.
    EXPECT_GE(e.on_us, prev_us) << label;
    prev_us = e.on_us;
    switch (e.kind) {
      case sim::ProbeKind::kTaskBegin:
        attempt_open = true;
        attempt_task = e.id;
        break;
      case sim::ProbeKind::kTaskCommit:
        // Every commit closes an attempt of the same task that was opened before it.
        EXPECT_TRUE(attempt_open) << label << ": commit without a begin";
        EXPECT_EQ(e.id, attempt_task) << label << ": commit/begin task mismatch";
        attempt_open = false;
        break;
      case sim::ProbeKind::kReboot:
        // Reboot ordinals are dense: 1, 2, 3, ... with no gaps.
        ++reboot_ordinal;
        EXPECT_EQ(e.id, reboot_ordinal) << label;
        attempt_open = false;
        break;
      default:
        break;
    }
  }
  EXPECT_EQ(reboot_ordinal, stats.power_failures) << label;

  // Event-derived counters reconcile exactly with the device's RunStats.
  const RunProfile profile = BuildProfile(run);
  EXPECT_EQ(profile.ev_reboots, stats.power_failures) << label;
  EXPECT_EQ(profile.ev_commits, stats.tasks_committed) << label;
  EXPECT_EQ(profile.ev_io_exec, stats.io_executions) << label;
  EXPECT_EQ(profile.ev_io_redundant, stats.io_redundant) << label;
  EXPECT_EQ(profile.ev_io_skip, stats.io_skipped) << label;
  EXPECT_EQ(profile.ev_dma_exec, stats.dma_executions) << label;
  EXPECT_EQ(profile.ev_dma_redundant, stats.dma_redundant) << label;
  EXPECT_EQ(profile.ev_dma_skip, stats.dma_skipped) << label;
}

TEST(Capture, ProbeStreamIsWellFormedAcrossRuntimes) {
  for (apps::RuntimeKind rt : kAllRuntimes) {
    for (apps::AppKind app : {apps::AppKind::kDma, apps::AppKind::kWeather}) {
      report::ExperimentConfig config;
      config.app = app;
      config.runtime = rt;
      config.seed = 11;
      const CapturedRun run = CaptureRun(config);
      EXPECT_FALSE(run.events.empty());
      EXPECT_FALSE(run.task_names.empty());
      ExpectWellFormed(run, std::string(apps::ToString(app)) + "/" + apps::ToString(rt));
    }
  }
}

// --- Timeline serialization -------------------------------------------------------------

// Crude structural validity: balanced braces/brackets outside of strings. The CI
// trace-smoke job runs the real `python3 -m json.tool` parse on tool output.
void ExpectBalancedJson(const std::string& json) {
  int braces = 0;
  int brackets = 0;
  bool in_string = false;
  for (size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == '{') {
      ++braces;
    } else if (c == '}') {
      --braces;
    } else if (c == '[') {
      ++brackets;
    } else if (c == ']') {
      --brackets;
    }
    EXPECT_GE(braces, 0);
    EXPECT_GE(brackets, 0);
  }
  EXPECT_FALSE(in_string);
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(Timeline, EmitsTaskSlicesRebootsAndMetadata) {
  report::ExperimentConfig config;
  config.app = apps::AppKind::kWeather;
  config.runtime = apps::RuntimeKind::kEaseio;
  config.seed = 3;
  const CapturedRun run = CaptureRun(config);
  ASSERT_GT(run.result.run.stats.power_failures, 0u);
  const std::string json = ChromeTraceJson(run);
  ExpectBalancedJson(json);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"easeio-trace/1\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);  // task slices
  EXPECT_NE(json.find("reboot #1"), std::string::npos);      // reboot instants
  EXPECT_NE(json.find("\"powered\""), std::string::npos);    // power counter track
}

TEST(Timeline, CapacitorModeProducesChargeTrack) {
  report::ExperimentConfig config;
  config.app = apps::AppKind::kWeather;
  config.runtime = apps::RuntimeKind::kEaseio;
  config.rf_distance_in = 56;  // capacitor-driven failures (Figure 13 mode)
  config.cap_sample_period_us = 100;
  const CapturedRun run = CaptureRun(config);
  const RunProfile profile = BuildProfile(run);
  EXPECT_GT(profile.cap_samples, 0u);
  EXPECT_GT(profile.cap_max_uv, 0u);
  EXPECT_GE(profile.cap_max_uv, profile.cap_min_uv);
  const std::string json = ChromeTraceJson(run);
  EXPECT_NE(json.find("\"capacitor_v\""), std::string::npos);
}

// --- Determinism ------------------------------------------------------------------------

TEST(Profile, IdenticalRunsSerializeByteIdentically) {
  report::ExperimentConfig config;
  config.app = apps::AppKind::kDma;
  config.runtime = apps::RuntimeKind::kEaseio;
  config.seed = 5;
  config.cap_sample_period_us = 250;
  const CapturedRun a = CaptureRun(config);
  const CapturedRun b = CaptureRun(config);
  EXPECT_EQ(a.events.size(), b.events.size());
  EXPECT_EQ(ProfileJson(a), ProfileJson(b));
  EXPECT_EQ(ChromeTraceJson(a), ChromeTraceJson(b));
}

TEST(Profile, ReconcilesWithRunStatsAndSerializes) {
  report::ExperimentConfig config;
  config.app = apps::AppKind::kWeather;
  config.runtime = apps::RuntimeKind::kAlpaca;
  config.seed = 2;
  const CapturedRun run = CaptureRun(config);
  const RunProfile profile = BuildProfile(run);
  // Per-task attempt accounting: attempts = commits + aborted, and each task's
  // histogram totals its commits.
  uint64_t attempts = 0;
  uint64_t commits = 0;
  for (const TaskProfile& t : profile.tasks) {
    EXPECT_EQ(t.attempts, t.commits + t.aborted) << t.name;
    attempts += t.attempts;
    commits += t.commits;
    uint64_t hist_total = 0;
    for (size_t i = 0; i < kAttemptHistBuckets; ++i) {
      hist_total += t.attempts_per_commit_hist[i];
    }
    EXPECT_EQ(hist_total, t.commits) << t.name;
  }
  EXPECT_EQ(commits, run.result.run.stats.tasks_committed);
  EXPECT_GE(attempts, commits);
  const std::string json = ProfileJson(run);
  ExpectBalancedJson(json);
  EXPECT_NE(json.find("\"easeio-profile/1\""), std::string::npos);
  EXPECT_NE(json.find("\"tasks\""), std::string::npos);
  EXPECT_NE(json.find("\"io_sites\""), std::string::npos);
  EXPECT_NE(json.find("\"failures\""), std::string::npos);
}

}  // namespace
}  // namespace easeio::obs
