// Tests for the shared CLI parsing helpers (tools/cli_flags.h), with the --exhaust
// flag's contract as the motivating case: the value grammar must reject 0 (below the
// minimum), values past the depth cap, sign prefixes, and trailing garbage, and the
// deduper must reject a repeated flag regardless of its value.

#include <gtest/gtest.h>

#include <cstdint>

#include "cli_flags.h"

namespace easeio {
namespace {

uint64_t MustParse(const char* s, uint64_t min, uint64_t max) {
  uint64_t out = 0;
  EXPECT_TRUE(tools::ParseUintFlag("test", "--flag", s, min, max, &out)) << s;
  return out;
}

bool Rejects(const char* s, uint64_t min, uint64_t max) {
  uint64_t out = 0;
  return !tools::ParseUintFlag("test", "--flag", s, min, max, &out);
}

TEST(ParseUintFlag, AcceptsWholeStringInRange) {
  EXPECT_EQ(MustParse("1", 1, 2), 1u);
  EXPECT_EQ(MustParse("2", 1, 2), 2u);
  EXPECT_EQ(MustParse("0", 0, 10), 0u);
  EXPECT_EQ(MustParse("18446744073709551615", 0, UINT64_MAX), UINT64_MAX);
}

TEST(ParseUintFlag, RejectsTheExhaustEdgeCases) {
  // --exhaust is ParseUintFlag(..., 1, 2, ...): 0 and anything past the depth cap
  // are usage errors, not silently clamped.
  EXPECT_TRUE(Rejects("0", 1, 2));
  EXPECT_TRUE(Rejects("3", 1, 2));
  EXPECT_TRUE(Rejects("", 1, 2));
}

TEST(ParseUintFlag, RejectsSignsGarbageAndOverflow) {
  EXPECT_TRUE(Rejects("-1", 0, 10));
  EXPECT_TRUE(Rejects("+1", 0, 10));
  EXPECT_TRUE(Rejects("1junk", 0, 10));
  EXPECT_TRUE(Rejects("junk", 0, 10));
  EXPECT_TRUE(Rejects(" 1", 0, 10));
  EXPECT_TRUE(Rejects("99999999999999999999999999", 0, UINT64_MAX));
  EXPECT_TRUE(Rejects(nullptr, 0, 10));
}

TEST(ParseUintFlag, RejectsTrailingWhitespace) {
  // A quoted shell value like "--runs=20 " must not silently parse as 20:
  // whitespace after the digits is trailing garbage like any other.
  EXPECT_TRUE(Rejects("1 ", 0, 10));
  EXPECT_TRUE(Rejects("1\t", 0, 10));
  EXPECT_TRUE(Rejects("1\n", 0, 10));
  EXPECT_TRUE(Rejects("1 2", 0, 10));
}

TEST(ParseDoubleFlag, WholeStringNonNegative) {
  double out = 0;
  EXPECT_TRUE(tools::ParseDoubleFlag("test", "--d", "2.5", &out));
  EXPECT_DOUBLE_EQ(out, 2.5);
  EXPECT_TRUE(tools::ParseDoubleFlag("test", "--d", ".5", &out));
  EXPECT_DOUBLE_EQ(out, 0.5);
  EXPECT_TRUE(tools::ParseDoubleFlag("test", "--d", "1e3", &out));
  EXPECT_DOUBLE_EQ(out, 1000.0);
  EXPECT_FALSE(tools::ParseDoubleFlag("test", "--d", "-2.5", &out));
  EXPECT_FALSE(tools::ParseDoubleFlag("test", "--d", "2.5x", &out));
  EXPECT_FALSE(tools::ParseDoubleFlag("test", "--d", "", &out));
  EXPECT_FALSE(tools::ParseDoubleFlag("test", "--d", nullptr, &out));
}

TEST(ParseDoubleFlag, RejectsWhitespaceWordsAndHex) {
  // strtod on its own would take all of these; the flag grammar must not.
  double out = 0;
  EXPECT_FALSE(tools::ParseDoubleFlag("test", "--d", " 2.5", &out));
  EXPECT_FALSE(tools::ParseDoubleFlag("test", "--d", "2.5 ", &out));
  EXPECT_FALSE(tools::ParseDoubleFlag("test", "--d", "+2.5", &out));
  EXPECT_FALSE(tools::ParseDoubleFlag("test", "--d", "inf", &out));
  EXPECT_FALSE(tools::ParseDoubleFlag("test", "--d", "nan", &out));
  EXPECT_FALSE(tools::ParseDoubleFlag("test", "--d", "0x10", &out));
  EXPECT_FALSE(tools::ParseDoubleFlag("test", "--d", "1e999", &out));  // overflow
}

TEST(FlagDeduper, RejectsDuplicatesByFlagName) {
  tools::FlagDeduper dedupe("test");
  EXPECT_TRUE(dedupe.Note("--exhaust=1"));
  // Same flag, different value: still a duplicate (the key is the name alone).
  EXPECT_FALSE(dedupe.Note("--exhaust=2"));
  // Valueless and valued spellings collide too.
  EXPECT_TRUE(dedupe.Note("--no-snapshot"));
  EXPECT_FALSE(dedupe.Note("--no-snapshot"));
  // Distinct flags stay independent.
  EXPECT_TRUE(dedupe.Note("--no-prune"));
}

}  // namespace
}  // namespace easeio
