// Bytecode/VM tests: every operator and control-flow construct of EaseC, evaluated by
// compiling a tiny program and executing it on a never-failing device, plus VM-level
// edge cases (division by zero, deep nesting, repeat-loop counters).

#include <gtest/gtest.h>

#include "apps/runtime_factory.h"
#include "easec/program.h"
#include "kernel/engine.h"
#include "sim/failure.h"

namespace easeio::easec {
namespace {

// Compiles `task main_task() { out = <expr-or-stmts>; end_task; }` and returns the
// final value of __nv out.
int16_t EvalProgram(const std::string& body) {
  const std::string source = "__nv int16 out;\n__nv int16 aux[4];\ntask main_task() {\n" +
                             body + "\nend_task;\n}\n";
  const CompileResult compiled = Compile(source);
  EXPECT_TRUE(compiled.ok) << compiled.errors << "\nsource:\n" << source;
  if (!compiled.ok) {
    return -32768;
  }

  sim::NeverFailScheduler never;
  sim::DeviceConfig config;
  config.seed = 1;
  sim::Device dev(config, never);
  kernel::NvManager nv(dev.mem());
  auto rt = apps::MakeRuntime(apps::RuntimeKind::kEaseio);
  rt->Bind(dev, nv);
  InstantiatedProgram prog = Instantiate(compiled, dev, *rt, nv);
  kernel::Engine engine;
  const kernel::RunResult r = engine.Run(dev, *rt, nv, prog.graph, prog.entry);
  EXPECT_TRUE(r.completed);
  return dev.mem().ReadI16(nv.slot(prog.nv_slots[0]).addr);
}

struct ExprCase {
  const char* expr;
  int16_t expect;
};

class ExprEval : public ::testing::TestWithParam<ExprCase> {};

TEST_P(ExprEval, EvaluatesLikeC) {
  const ExprCase& c = GetParam();
  EXPECT_EQ(EvalProgram(std::string("out = ") + c.expr + ";"), c.expect) << c.expr;
}

INSTANTIATE_TEST_SUITE_P(
    Operators, ExprEval,
    ::testing::Values(ExprCase{"1 + 2", 3}, ExprCase{"7 - 10", -3}, ExprCase{"6 * 7", 42},
                      ExprCase{"17 / 5", 3}, ExprCase{"17 % 5", 2}, ExprCase{"9 / 0", 0},
                      ExprCase{"9 % 0", 0}, ExprCase{"-(5)", -5}, ExprCase{"!0", 1},
                      ExprCase{"!7", 0}, ExprCase{"3 == 3", 1}, ExprCase{"3 != 3", 0},
                      ExprCase{"2 < 3", 1}, ExprCase{"3 < 2", 0}, ExprCase{"2 <= 2", 1},
                      ExprCase{"4 > 1", 1}, ExprCase{"4 >= 5", 0},
                      ExprCase{"1 && 2", 1}, ExprCase{"1 && 0", 0}, ExprCase{"0 || 3", 1},
                      ExprCase{"0 || 0", 0}, ExprCase{"2 + 3 * 4", 14},
                      ExprCase{"(2 + 3) * 4", 20}, ExprCase{"10 - 2 - 3", 5},
                      ExprCase{"1 + 2 == 3 && 4 > 2", 1}, ExprCase{"0x1F", 31}),
    [](const auto& info) { return "case" + std::to_string(info.index); });

TEST(VmControlFlow, IfElseTakesTheRightBranch) {
  EXPECT_EQ(EvalProgram("int16 x = 5; if (x > 3) { out = 1; } else { out = 2; }"), 1);
  EXPECT_EQ(EvalProgram("int16 x = 2; if (x > 3) { out = 1; } else { out = 2; }"), 2);
  EXPECT_EQ(EvalProgram("int16 x = 2; if (x > 3) { out = 1; }"), 0);
}

TEST(VmControlFlow, WhileLoopAccumulates) {
  EXPECT_EQ(EvalProgram("int16 i = 0; int16 s = 0;"
                        "while (i < 10) { s = s + i; i = i + 1; } out = s;"),
            45);
}

TEST(VmControlFlow, NestedLoops) {
  // The inner declaration's initialiser re-runs on every outer iteration.
  EXPECT_EQ(EvalProgram("int16 i = 0; int16 s = 0;"
                        "while (i < 3) { int16 j = 0;"
                        "  while (j < 4) { s = s + 1; j = j + 1; }"
                        "  i = i + 1; } out = s;"),
            12);
}

TEST(VmControlFlow, RepeatRunsExactlyNTimes) {
  EXPECT_EQ(EvalProgram("int16 s = 0; repeat (7) { s = s + 2; } out = s;"), 14);
}

TEST(VmControlFlow, NamedRepeatCounterIsVisible) {
  EXPECT_EQ(EvalProgram("int16 s = 0; repeat (i, 5) { s = s + i; } out = s;"), 10);
  EXPECT_EQ(EvalProgram("repeat (i, 4) { aux[i] = i * 2; } out = aux[3];"), 6);
}

TEST(VmControlFlow, NamedRepeatCounterLanesTrackIterations) {
  // Each iteration's _call_IO uses the counter as its lane: a Single call inside a
  // named repeat runs once per lane, never more.
  const std::string source = R"(
__nv int16 count;
task main_task() {
  repeat (i, 6) {
    int16 v = _call_IO(Temp(), "Always");
    count = count + 1;
  }
  end_task;
}
)";
  const CompileResult compiled = Compile(source);
  ASSERT_TRUE(compiled.ok) << compiled.errors;
  EXPECT_EQ(compiled.analysis.sites[0].lanes, 6u);
}

TEST(VmArrays, IndexedReadsAndWrites) {
  EXPECT_EQ(EvalProgram("aux[0] = 10; aux[1] = 20; aux[2] = aux[0] + aux[1];"
                        "out = aux[2] + aux[3];"),
            30);
}

TEST(VmArrays, DynamicSubscripts) {
  EXPECT_EQ(EvalProgram("int16 i = 0; while (i < 4) { aux[i] = i * i; i = i + 1; }"
                        "out = aux[3] + aux[2];"),
            13);
}

TEST(VmBuiltins, GetTimeIsMonotonic) {
  EXPECT_EQ(EvalProgram("int16 t0 = GetTime(); delay(5000); int16 t1 = GetTime();"
                        "out = t1 >= t0;"),
            1);
}

TEST(VmCharges, EveryInstructionCostsSimTime) {
  const std::string source =
      "__nv int16 out;\ntask main_task() { int16 i = 0;"
      "while (i < 100) { i = i + 1; } out = i; end_task; }\n";
  const CompileResult compiled = Compile(source);
  ASSERT_TRUE(compiled.ok);
  sim::NeverFailScheduler never;
  sim::DeviceConfig config;
  sim::Device dev(config, never);
  kernel::NvManager nv(dev.mem());
  auto rt = apps::MakeRuntime(apps::RuntimeKind::kEaseio);
  rt->Bind(dev, nv);
  InstantiatedProgram prog = Instantiate(compiled, dev, *rt, nv);
  kernel::Engine engine;
  engine.Run(dev, *rt, nv, prog.graph, prog.entry);
  // 100 iterations x ~8 instructions each: at least several hundred charged cycles.
  EXPECT_GT(dev.clock().on_us(), 600u);
}

TEST(VmTasks, MultiTaskChainsExecuteInOrder) {
  const std::string source = R"(
__nv int16 trace;
task a() { trace = trace * 10 + 1; next_task(b); }
task b() { trace = trace * 10 + 2; next_task(c); }
task c() { trace = trace * 10 + 3; end_task; }
)";
  const CompileResult compiled = Compile(source);
  ASSERT_TRUE(compiled.ok) << compiled.errors;
  sim::NeverFailScheduler never;
  sim::DeviceConfig config;
  sim::Device dev(config, never);
  kernel::NvManager nv(dev.mem());
  auto rt = apps::MakeRuntime(apps::RuntimeKind::kAlpaca);
  rt->Bind(dev, nv);
  InstantiatedProgram prog = Instantiate(compiled, dev, *rt, nv);
  kernel::Engine engine;
  ASSERT_TRUE(engine.Run(dev, *rt, nv, prog.graph, prog.entry).completed);
  EXPECT_EQ(dev.mem().ReadI16(nv.slot(prog.nv_slots[0]).addr), 123);
}

TEST(VmTasks, FallingOffTheEndEndsTheProgram) {
  // A body with no end_task/next_task terminates (implicit kEndTask).
  EXPECT_EQ(EvalProgram("out = 5;"), 5);
}

}  // namespace
}  // namespace easeio::easec
