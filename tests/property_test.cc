// Property-based tests.
//
// The central safety property of EaseIO (Section 3.5): *for every possible failure
// instant*, intermittent execution must produce exactly the state continuous execution
// produces. The sweep tests below inject a power failure at every point of the run
// (stepping finely through the whole on-time), plus double-failure patterns, and
// compare the final NVM output bit-for-bit against the continuous golden run. The
// parameterized seed sweeps then check structural invariants across the whole
// {application x runtime} grid under randomized schedules.

#include <gtest/gtest.h>

#include "report/experiment.h"
#include "sim/failure.h"

namespace easeio {
namespace {

namespace k = easeio::kernel;

struct ScheduledRun {
  bool completed = false;
  bool consistent = false;
  std::vector<uint8_t> output;
  uint64_t on_us = 0;
};

apps::AppHandle Build(report::AppKind app, sim::Device& dev, kernel::Runtime& rt,
                      kernel::NvManager& nv, const apps::AppOptions& options) {
  switch (app) {
    case report::AppKind::kDma:
      return apps::BuildDmaApp(dev, rt, nv, options);
    case report::AppKind::kTemp:
      return apps::BuildTempApp(dev, rt, nv);
    case report::AppKind::kLea:
      return apps::BuildLeaApp(dev, rt, nv);
    case report::AppKind::kFir:
      return apps::BuildFirApp(dev, rt, nv, options);
    case report::AppKind::kWeather:
      return apps::BuildWeatherApp(dev, rt, nv, options);
    case report::AppKind::kBranch:
      return apps::BuildBranchApp(dev, rt, nv);
  }
  return apps::BuildBranchApp(dev, rt, nv);
}

// Runs `app` on `runtime` with power failures at exactly the given on-time instants.
ScheduledRun RunWithSchedule(report::AppKind app, apps::RuntimeKind runtime, uint64_t seed,
                             std::vector<uint64_t> fail_at,
                             const apps::AppOptions& options = {}) {
  sim::ScriptedScheduler sched(std::move(fail_at), /*off_us=*/700);
  sim::DeviceConfig config;
  config.seed = seed;
  sim::Device dev(config, sched);
  kernel::NvManager nv(dev.mem());
  auto rt = apps::MakeRuntime(runtime);
  rt->Bind(dev, nv);
  apps::AppOptions opts = options;
  if (apps::IsEaseioOp(runtime)) {
    opts.exclude_const_dma = true;
  }
  apps::AppHandle handle = Build(app, dev, *rt, nv, opts);

  kernel::Engine engine;
  const kernel::RunResult result = engine.Run(dev, *rt, nv, handle.graph, handle.entry);

  ScheduledRun out;
  out.completed = result.completed;
  out.consistent = result.completed && handle.check_consistent(dev);
  out.output = handle.collect_output(dev);
  out.on_us = result.on_us;
  return out;
}

// --- Exhaustive single-failure injection ---------------------------------------------------

class FailureInjectionSweep
    : public ::testing::TestWithParam<std::tuple<report::AppKind, apps::RuntimeKind>> {};

TEST_P(FailureInjectionSweep, EveryFailureInstantPreservesTheGoldenOutput) {
  const auto [app, runtime] = GetParam();
  const uint64_t seed = 11;

  const ScheduledRun golden = RunWithSchedule(app, runtime, seed, {});
  ASSERT_TRUE(golden.completed);
  ASSERT_TRUE(golden.consistent);

  // Step a single failure through the whole continuous run (odd step so the instants
  // hit unaligned positions inside multi-cycle operations too).
  const uint64_t step = std::max<uint64_t>(golden.on_us / 120, 37);
  for (uint64_t t = 13; t < golden.on_us; t += step) {
    const ScheduledRun run = RunWithSchedule(app, runtime, seed, {t});
    ASSERT_TRUE(run.completed) << "failure at " << t;
    EXPECT_TRUE(run.consistent) << "failure at " << t;
    EXPECT_EQ(run.output, golden.output) << "failure at " << t;
  }
}

// The deterministic workloads: their outputs must match bit-for-bit under EaseIO.
INSTANTIATE_TEST_SUITE_P(
    EaseioDeterministicApps, FailureInjectionSweep,
    ::testing::Combine(::testing::Values(report::AppKind::kDma, report::AppKind::kFir,
                                         report::AppKind::kLea),
                       ::testing::Values(apps::RuntimeKind::kEaseio,
                                         apps::RuntimeKind::kEaseioOp)),
    [](const auto& info) {
      std::string name = std::string(ToString(std::get<0>(info.param))) + "_" +
                         std::string(ToString(std::get<1>(info.param)));
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) {
          c = '_';
        }
      }
      return name;
    });

// --- Double-failure injection -----------------------------------------------------------------

class DoubleFailureSweep : public ::testing::TestWithParam<report::AppKind> {};

TEST_P(DoubleFailureSweep, BackToBackFailuresPreserveTheGoldenOutput) {
  const report::AppKind app = GetParam();
  const uint64_t seed = 23;
  const ScheduledRun golden = RunWithSchedule(app, apps::RuntimeKind::kEaseio, seed, {});
  ASSERT_TRUE(golden.completed);

  const uint64_t step = std::max<uint64_t>(golden.on_us / 40, 101);
  for (uint64_t t = 29; t < golden.on_us; t += step) {
    // A second failure lands shortly after the first recovery begins.
    const ScheduledRun run =
        RunWithSchedule(app, apps::RuntimeKind::kEaseio, seed, {t, t + 211});
    ASSERT_TRUE(run.completed) << "failures at " << t;
    EXPECT_TRUE(run.consistent) << "failures at " << t;
    EXPECT_EQ(run.output, golden.output) << "failures at " << t;
  }
}

INSTANTIATE_TEST_SUITE_P(EaseioApps, DoubleFailureSweep,
                         ::testing::Values(report::AppKind::kDma, report::AppKind::kFir,
                                           report::AppKind::kLea),
                         [](const auto& info) {
                           std::string name = ToString(info.param);
                           for (char& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c))) {
                               c = '_';
                             }
                           }
                           return name;
                         });

// --- Weather app: internal consistency under injected failures ---------------------------------

TEST(WeatherInjection, SingleBufferStaysConsistentUnderEaseioAtEveryInstant) {
  apps::AppOptions options;
  options.single_buffer = true;
  const ScheduledRun golden =
      RunWithSchedule(report::AppKind::kWeather, apps::RuntimeKind::kEaseio, 5, {}, options);
  ASSERT_TRUE(golden.completed);

  const uint64_t step = std::max<uint64_t>(golden.on_us / 90, 53);
  for (uint64_t t = 17; t < golden.on_us; t += step) {
    const ScheduledRun run = RunWithSchedule(report::AppKind::kWeather,
                                             apps::RuntimeKind::kEaseio, 5, {t}, options);
    ASSERT_TRUE(run.completed) << "failure at " << t;
    EXPECT_TRUE(run.consistent) << "failure at " << t;
  }
}

TEST(WeatherInjection, SingleBufferHasCorruptingInstantsUnderAlpaca) {
  apps::AppOptions options;
  options.single_buffer = true;
  const ScheduledRun golden =
      RunWithSchedule(report::AppKind::kWeather, apps::RuntimeKind::kAlpaca, 5, {}, options);
  ASSERT_TRUE(golden.completed);

  uint32_t corrupted = 0;
  const uint64_t step = std::max<uint64_t>(golden.on_us / 90, 53);
  for (uint64_t t = 17; t < golden.on_us; t += step) {
    const ScheduledRun run = RunWithSchedule(report::AppKind::kWeather,
                                             apps::RuntimeKind::kAlpaca, 5, {t}, options);
    if (run.completed && !run.consistent) {
      ++corrupted;
    }
  }
  EXPECT_GT(corrupted, 0u) << "the single-buffer WAR hazard should bite somewhere";
}

// --- Branch safety at every instant --------------------------------------------------------------

TEST(BranchInjection, ExactlyOneFlagAtEveryFailureInstant) {
  const ScheduledRun golden =
      RunWithSchedule(report::AppKind::kBranch, apps::RuntimeKind::kEaseio, 31, {});
  ASSERT_TRUE(golden.completed);
  const uint64_t step = std::max<uint64_t>(golden.on_us / 100, 23);
  for (uint64_t t = 7; t < golden.on_us; t += step) {
    const ScheduledRun run =
        RunWithSchedule(report::AppKind::kBranch, apps::RuntimeKind::kEaseio, 31, {t});
    ASSERT_TRUE(run.completed);
    EXPECT_TRUE(run.consistent) << "failure at " << t;
  }
}

// --- Randomized seed sweeps across the full grid ---------------------------------------------------

class SeedSweep : public ::testing::TestWithParam<
                      std::tuple<report::AppKind, apps::RuntimeKind>> {};

TEST_P(SeedSweep, StructuralInvariantsHoldUnderRandomSchedules) {
  const auto [app, runtime] = GetParam();
  for (uint64_t seed = 1; seed <= 25; ++seed) {
    report::ExperimentConfig config;
    config.app = app;
    config.runtime = runtime;
    config.seed = seed;
    config.app_options.single_buffer = false;
    const report::ExperimentResult r = report::RunExperiment(config);

    ASSERT_TRUE(r.run.completed) << "seed " << seed;
    // Attribution closes: app + overhead + wasted == total on-time.
    EXPECT_NEAR(r.run.stats.TotalUs(), static_cast<double>(r.run.on_us), 0.5)
        << "seed " << seed;
    // Energy attribution closes too.
    EXPECT_NEAR(r.run.stats.TotalJ(), r.run.energy_j, r.run.energy_j * 1e-9 + 1e-12);
    // Counter sanity.
    EXPECT_GE(r.run.stats.io_executions, r.run.stats.io_redundant);
    if (runtime == apps::RuntimeKind::kAlpaca || runtime == apps::RuntimeKind::kInk) {
      EXPECT_EQ(r.run.stats.io_skipped + r.run.stats.dma_skipped, 0u)
          << "baselines cannot skip I/O";
    }
    if (runtime == apps::RuntimeKind::kEaseio || runtime == apps::RuntimeKind::kEaseioOp) {
      EXPECT_TRUE(r.consistent) << "seed " << seed;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SeedSweep,
    ::testing::Combine(::testing::Values(report::AppKind::kDma, report::AppKind::kTemp,
                                         report::AppKind::kLea, report::AppKind::kFir,
                                         report::AppKind::kWeather, report::AppKind::kBranch),
                       ::testing::Values(apps::RuntimeKind::kAlpaca, apps::RuntimeKind::kInk,
                                         apps::RuntimeKind::kEaseio,
                                         apps::RuntimeKind::kEaseioOp)),
    [](const auto& info) {
      std::string name = std::string(ToString(std::get<0>(info.param))) + "_" +
                         std::string(ToString(std::get<1>(info.param)));
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) {
          c = '_';
        }
      }
      return name;
    });

}  // namespace
}  // namespace easeio
