// Energy-driven operation: capacitor draw/charge during execution, brown-out and
// recharge behaviour, and end-to-end runs powered by harvesters.

#include <gtest/gtest.h>

#include "apps/apps.h"
#include "apps/runtime_factory.h"
#include "kernel/engine.h"
#include "sim/device.h"
#include "sim/failure.h"

namespace easeio::sim {
namespace {

DeviceConfig CapConfig(double cap_f = 6e-6) {
  DeviceConfig config;
  config.seed = 1;
  config.use_capacitor = true;
  config.capacitance_f = cap_f;
  config.v_max = 3.2;
  return config;
}

TEST(CapacitorMode, ExecutionDrainsTheCapacitor) {
  CapacitorScheduler sched;
  ConstantHarvester none(0.0);
  Device dev(CapConfig(100e-6), sched, &none);  // big cap: no brown-out in this test
  dev.Begin();
  const double v0 = dev.capacitor().voltage();
  dev.Cpu(20'000);
  EXPECT_LT(dev.capacitor().voltage(), v0);
}

TEST(CapacitorMode, HarvestChargesDuringExecution) {
  CapacitorScheduler sched;
  ConstantHarvester strong(10e-3);  // 10 mW >> draw
  Device dev(CapConfig(), sched, &strong);
  dev.Begin();
  dev.Cpu(5'000);
  dev.Cpu(50'000);
  // Net-positive harvest: the capacitor stays at/near its clamp and never browns out.
  EXPECT_GT(dev.capacitor().voltage(), 3.0);
  EXPECT_EQ(dev.stats().power_failures, 0u);
}

TEST(CapacitorMode, BrownOutThrowsAndRebootRecharges) {
  CapacitorScheduler sched;
  ConstantHarvester weak(0.2e-3);
  Device dev(CapConfig(), sched, &weak);
  dev.Begin();
  EXPECT_THROW(dev.Cpu(200'000), PowerFailure);  // drains the 6 uF capacitor
  EXPECT_TRUE(dev.capacitor().BelowOff());
  const uint64_t wall_before = dev.clock().wall_us();
  dev.Reboot();
  // Dark time passed (recharge through the 0.2 mW harvester) and the capacitor is
  // back at the boot threshold.
  EXPECT_GT(dev.clock().off_us(), 0u);
  EXPECT_GT(dev.clock().wall_us(), wall_before);
  EXPECT_GE(dev.capacitor().voltage(), dev.capacitor().v_on() - 1e-6);
}

TEST(CapacitorMode, RechargeTimeScalesWithHarvestPower) {
  auto off_time = [](double watts) {
    CapacitorScheduler sched;
    ConstantHarvester h(watts);
    Device dev(CapConfig(), sched, &h);
    dev.Begin();
    EXPECT_THROW(dev.Cpu(500'000), PowerFailure);
    dev.Reboot();
    return dev.clock().off_us();
  };
  // Both rates stay below the CPU's ~0.6 mW draw so the capacitor really drains.
  const uint64_t slow = off_time(0.2e-3);
  const uint64_t fast = off_time(0.5e-3);
  EXPECT_GT(slow, fast * 2);  // ~2.5x the power -> ~1/2.5 the recharge time
}

TEST(CapacitorMode, ZeroHarvestBrownOutIsAModellingError) {
  CapacitorScheduler sched;
  ConstantHarvester none(0.0);
  Device dev(CapConfig(), sched, &none);
  dev.Begin();
  EXPECT_THROW(dev.Cpu(500'000), PowerFailure);
  EXPECT_DEATH(dev.Reboot(), "no harvest income");
}

TEST(CapacitorMode, WorkloadCompletesAcrossBrownOuts) {
  CapacitorScheduler sched;
  ConstantHarvester h(0.20e-3);
  Device dev(CapConfig(), sched, &h);
  kernel::NvManager nv(dev.mem());
  auto rt = apps::MakeRuntime(apps::RuntimeKind::kEaseio);
  rt->Bind(dev, nv);
  apps::AppOptions options;
  options.jobs = 6;
  apps::AppHandle app = apps::BuildDmaApp(dev, *rt, nv, options);

  kernel::Engine engine;
  const kernel::RunResult r = engine.Run(dev, *rt, nv, app.graph, app.entry);
  ASSERT_TRUE(r.completed);
  EXPECT_GT(r.stats.power_failures, 0u);
  EXPECT_GT(r.off_us, 0u);  // real recharge gaps
  EXPECT_TRUE(app.check_consistent(dev));
}

TEST(CapacitorMode, JitteredHarvestStillCompletes) {
  CapacitorScheduler sched;
  RfHarvester rf(58.0, 0.45e-3, 52.0, /*jitter=*/0.35, /*seed=*/3);
  Device dev(CapConfig(), sched, &rf);
  kernel::NvManager nv(dev.mem());
  auto rt = apps::MakeRuntime(apps::RuntimeKind::kEaseio);
  rt->Bind(dev, nv);
  apps::AppHandle app = apps::BuildDmaApp(dev, *rt, nv, {});
  kernel::Engine engine;
  const kernel::RunResult r = engine.Run(dev, *rt, nv, app.graph, app.entry);
  EXPECT_TRUE(r.completed);
  EXPECT_TRUE(app.check_consistent(dev));
}

}  // namespace
}  // namespace easeio::sim
