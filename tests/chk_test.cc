// Tests for the failure-schedule explorer (src/chk): candidate enumeration, coverage,
// parallel determinism, invariant detection, and the report-level API.

#include <gtest/gtest.h>

#include "chk/explorer.h"
#include "chk/trace.h"
#include "obs/capture.h"
#include "obs/timeline.h"
#include "report/experiment.h"

namespace easeio::chk {
namespace {

// --- Candidate enumeration --------------------------------------------------------------

// Expected output helper: the sorted, deduplicated union of event-bracket instants
// and the uniform time grid over (0, end).
std::vector<uint64_t> WithGrid(std::vector<uint64_t> brackets, uint64_t end) {
  for (uint64_t j = 1; j <= kTimeGridSamples; ++j) {
    const uint64_t t = end * j / (kTimeGridSamples + 1);
    if (t >= 1 && t < end) {
      brackets.push_back(t);
    }
  }
  std::sort(brackets.begin(), brackets.end());
  brackets.erase(std::unique(brackets.begin(), brackets.end()), brackets.end());
  return brackets;
}

TEST(Trace, CandidateInstantsBracketEveryEvent) {
  std::vector<sim::ProbeEvent> events;
  events.push_back({sim::ProbeKind::kIoExec, 1, 0, 0, 0, 100});
  events.push_back({sim::ProbeKind::kTaskCommit, 0, 0, 0, 0, 350});
  const std::vector<uint64_t> got = CandidateInstants(events, 1000);
  // Each event yields its own instant and the instant just before it, merged with
  // the uniform time grid.
  EXPECT_EQ(got, WithGrid({99, 100, 349, 350}, 1000));
}

TEST(Trace, CandidateInstantsDedupAndClamp) {
  std::vector<sim::ProbeEvent> events;
  events.push_back({sim::ProbeKind::kIoExec, 1, 0, 0, 0, 100});
  events.push_back({sim::ProbeKind::kIoExec, 2, 0, 0, 0, 100});  // duplicate instant
  events.push_back({sim::ProbeKind::kIoExec, 3, 0, 0, 0, 101});  // 100 overlaps 101-1
  events.push_back({sim::ProbeKind::kTaskBegin, 0, 0, 0, 0, 0});  // 0-1 underflows: only 0
  events.push_back({sim::ProbeKind::kIoExec, 4, 0, 0, 0, 500});  // at/past end: clamped
  const std::vector<uint64_t> got = CandidateInstants(events, 500);
  EXPECT_EQ(got, WithGrid({0, 99, 100, 101, 499}, 500));
}

TEST(Trace, CandidateInstantsIgnoreReboots) {
  std::vector<sim::ProbeEvent> events;
  events.push_back({sim::ProbeKind::kReboot, 1, 0, 0, 0, 200});
  const std::vector<uint64_t> got = CandidateInstants(events, 1000);
  // The reboot contributes nothing; only the time grid remains.
  EXPECT_EQ(got, WithGrid({}, 1000));
  for (uint64_t t : got) {
    EXPECT_NE(t, 199u);
    EXPECT_NE(t, 200u);
  }
}

// --- Exploration ------------------------------------------------------------------------

TEST(Explorer, CoversUnitaskAppsCleanly) {
  // Acceptance bar: >= 500 distinct schedules across the unitask apps under EaseIO,
  // all completing, with zero invariant violations.
  uint32_t total_schedules = 0;
  for (apps::AppKind app : apps::kUnitaskApps) {
    ExploreConfig cfg;
    cfg.app = app;
    cfg.runtime = apps::RuntimeKind::kEaseio;
    cfg.depth = 2;
    cfg.budget = 250;
    const ExploreResult r = Explore(cfg);
    EXPECT_GT(r.candidate_instants, 0u) << r.app;
    EXPECT_EQ(r.completed, r.schedules) << r.app;
    EXPECT_TRUE(r.violations.empty())
        << r.app << ": " << (r.violations.empty() ? "" : r.violations.front().detail);
    total_schedules += r.schedules;
  }
  EXPECT_GE(total_schedules, 500u);
}

TEST(Explorer, ParallelJobsAreBitIdentical) {
  ExploreConfig cfg;
  cfg.app = apps::AppKind::kTemp;
  cfg.runtime = apps::RuntimeKind::kEaseio;
  cfg.depth = 2;
  cfg.budget = 120;
  ExploreConfig serial = cfg;
  serial.jobs = 1;
  ExploreConfig parallel = cfg;
  parallel.jobs = 4;
  // Timing excluded: wall-clock legitimately differs run to run; everything else must
  // be byte-identical.
  EXPECT_EQ(ToJson(Explore(serial), /*include_timing=*/false),
            ToJson(Explore(parallel), /*include_timing=*/false));
}

TEST(Explorer, BaselineRuntimePassesEventInvariants) {
  // Alpaca has no Single/Timely semantics; the event invariants must not fire on it.
  ExploreConfig cfg;
  cfg.app = apps::AppKind::kTemp;
  cfg.runtime = apps::RuntimeKind::kAlpaca;
  cfg.depth = 1;
  cfg.budget = 150;
  const ExploreResult r = Explore(cfg);
  EXPECT_GT(r.schedules, 0u);
  for (const Violation& v : r.violations) {
    EXPECT_NE(v.invariant, Invariant::kSingleReexec) << v.detail;
    EXPECT_NE(v.invariant, Invariant::kStaleTimely) << v.detail;
  }
}

TEST(Explorer, DetectsSeededRegionalPrivatizationBug) {
  // With regional DMA privatization disabled, EaseIO on the DMA app loses WAR
  // protection for job_count: a failure between the NV increment and the task commit
  // double-applies the increment on replay. Depth-1 exhaustive search must find it
  // and report a minimal (single-failure) schedule.
  ExploreConfig cfg;
  cfg.app = apps::AppKind::kDma;
  cfg.runtime = apps::RuntimeKind::kEaseio;
  cfg.easeio_regional_privatization = false;
  cfg.depth = 1;
  cfg.budget = 4000;  // exhaustive: the vulnerable window is narrow
  const ExploreResult r = Explore(cfg);
  EXPECT_EQ(r.schedules_skipped, 0u) << "budget must cover all depth-1 placements";
  ASSERT_FALSE(r.violations.empty());
  for (const Violation& v : r.violations) {
    EXPECT_EQ(v.schedule.size(), 1u) << "depth-1 search found a non-minimal schedule";
  }
}

TEST(Explorer, JsonIsWellFormedAndStable) {
  ExploreConfig cfg;
  cfg.app = apps::AppKind::kBranch;
  cfg.runtime = apps::RuntimeKind::kEaseio;
  cfg.depth = 1;
  cfg.budget = 50;
  const ExploreResult r = Explore(cfg);
  const std::string json = ToJson(r);
  EXPECT_NE(json.find("\"app\""), std::string::npos);
  EXPECT_NE(json.find("\"schedules\""), std::string::npos);
  EXPECT_NE(json.find("\"violations\""), std::string::npos);
  EXPECT_NE(json.find("\"timing\""), std::string::npos);
  const std::string without = ToJson(r, /*include_timing=*/false);
  EXPECT_EQ(without.find("\"timing\""), std::string::npos);
  // Re-running is byte-identical once the run-to-run timing object is excluded.
  EXPECT_EQ(without, ToJson(Explore(cfg), /*include_timing=*/false));
}

// --- Violation replay → counterexample trace --------------------------------------------

TEST(Explorer, ViolatingScheduleReplaysToParseableTrace) {
  // The `easechk --trace-failures` path: find the seeded regional-privatization bug,
  // replay its exact failure schedule with the probe attached, and serialize a
  // timeline. The replay must reproduce the injected failures and yield a non-empty
  // Perfetto-loadable document with the reboot visible.
  ExploreConfig cfg;
  cfg.app = apps::AppKind::kDma;
  cfg.runtime = apps::RuntimeKind::kEaseio;
  cfg.easeio_regional_privatization = false;
  cfg.depth = 1;
  cfg.budget = 4000;
  const ExploreResult r = Explore(cfg);
  ASSERT_FALSE(r.violations.empty());
  const Violation& v = r.violations.front();
  ReplayOutput replay = ReplaySchedule(cfg, v.schedule);
  EXPECT_FALSE(replay.events.empty());
  EXPECT_EQ(replay.run.stats.power_failures, v.schedule.size());
  EXPECT_EQ(replay.schedule, v.schedule);
  EXPECT_FALSE(replay.task_names.empty());
  const obs::CapturedRun run = obs::FromReplay(cfg, std::move(replay));
  const std::string json = obs::ChromeTraceJson(run);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("reboot #1"), std::string::npos);
  EXPECT_NE(json.find("\"easeio-trace/1\""), std::string::npos);
}

// --- Report-level API -------------------------------------------------------------------

TEST(RunExploration, MapsExperimentConfigThrough) {
  report::ExperimentConfig config;
  config.app = report::AppKind::kBranch;
  config.runtime = apps::RuntimeKind::kEaseio;
  report::ExplorationOptions options;
  options.depth = 1;
  options.budget = 200;
  const ExploreResult r = report::RunExploration(config, options);
  EXPECT_EQ(r.app, "Branch");
  EXPECT_GT(r.schedules, 0u);
  EXPECT_EQ(r.completed, r.schedules);
  EXPECT_TRUE(r.violations.empty());
}

}  // namespace
}  // namespace easeio::chk
