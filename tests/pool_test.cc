// Tests for sim::SnapshotPool (PR: hot-path snapshot/probe overhaul): free-list
// recycling semantics, hit/miss accounting, and — under AddressSanitizer — the
// poison-on-release discipline that turns use-after-release of a pooled buffer into a
// hard fault instead of silent corruption. The real consumer is the chk explorer's
// per-worker TrialStack; these tests drive the pool the same way (acquire, fill via
// Device::SnapshotAtRebootInto, resume, release, repeat).

#include <gtest/gtest.h>

#include <vector>

#include "sim/device.h"
#include "sim/failure.h"
#include "sim/snapshot_pool.h"

namespace easeio {
namespace {

TEST(SnapshotPool, MissThenHitRecyclesTheSameBuffer) {
  sim::SnapshotPool pool;
  EXPECT_EQ(pool.hits(), 0u);
  EXPECT_EQ(pool.misses(), 0u);
  EXPECT_EQ(pool.free_count(), 0u);

  sim::SnapshotPool::Handle h = pool.Acquire();
  ASSERT_NE(h, nullptr);
  sim::DeviceSnapshot* first = h.get();
  EXPECT_EQ(pool.misses(), 1u);
  EXPECT_EQ(pool.hits(), 0u);

  h.reset();  // back to the free list, not freed
  EXPECT_EQ(pool.free_count(), 1u);

  sim::SnapshotPool::Handle again = pool.Acquire();
  EXPECT_EQ(again.get(), first) << "free list should recycle, not allocate";
  EXPECT_EQ(pool.hits(), 1u);
  EXPECT_EQ(pool.misses(), 1u);
  EXPECT_EQ(pool.free_count(), 0u);
}

TEST(SnapshotPool, SteadyStateNeverAllocatesPastTheFirstMiss) {
  sim::SnapshotPool pool;
  for (int i = 0; i < 100; ++i) {
    sim::SnapshotPool::Handle h = pool.Acquire();
    ASSERT_NE(h, nullptr);
  }
  EXPECT_EQ(pool.misses(), 1u);
  EXPECT_EQ(pool.hits(), 99u);
}

TEST(SnapshotPool, OutstandingHandlesEachGetDistinctBuffers) {
  sim::SnapshotPool pool;
  sim::SnapshotPool::Handle a = pool.Acquire();
  sim::SnapshotPool::Handle b = pool.Acquire();
  EXPECT_NE(a.get(), b.get());
  EXPECT_EQ(pool.misses(), 2u);
  a.reset();
  b.reset();
  EXPECT_EQ(pool.free_count(), 2u);
  // The pool dtor drains (and under ASan unpoisons) the free list when this scope
  // ends; ASan/LSan would flag a leak or double-free here.
}

// Drives the pool exactly as the explorer does: fill a pooled snapshot from a live
// device, resume from it, release, mutate the device, re-fill the *recycled* buffer,
// and check the second resume restores the second state — i.e. a recycled buffer
// carries no residue of its previous fill. Under ASan this also proves the re-acquired
// FRAM buffer was unpoisoned before SnapshotInto touches it.
TEST(SnapshotPool, RecycledBufferRefillsFromLiveDevice) {
  sim::ScriptedScheduler sched({}, 700);
  sim::Device dev(sim::DeviceConfig{}, sched);
  const uint32_t buf = dev.mem().AllocFram("buf", 512);

  sim::SnapshotPool pool;

  dev.mem().Fill(buf, 512, 0x11);
  sim::SnapshotPool::Handle h = pool.Acquire();
  dev.SnapshotAtRebootInto(*h);
  h.reset();

  dev.mem().Fill(buf, 512, 0x22);
  h = pool.Acquire();
  EXPECT_EQ(pool.hits(), 1u);
  dev.SnapshotAtRebootInto(*h);

  dev.mem().Fill(buf, 512, 0x33);
  dev.ResumeFromSnapshot(*h);
  h.reset();
  for (uint32_t i = 0; i < 512; ++i) {
    ASSERT_EQ(dev.mem().Read8(buf + i), 0x22) << "offset " << i;
  }
}

TEST(SnapshotPool, DefaultConstructedHandleIsNull) {
  sim::SnapshotPool::Handle h;
  EXPECT_EQ(h, nullptr);
  h.reset();  // deleting null must be a no-op even with the pool-less Releaser
}

#if defined(__SANITIZE_ADDRESS__)
#define EASEIO_POOL_TEST_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define EASEIO_POOL_TEST_ASAN 1
#endif
#endif

#ifdef EASEIO_POOL_TEST_ASAN
// Reading a pooled snapshot's FRAM bytes after releasing the handle must fault under
// ASan: the free list poisons the buffer. This is the teeth behind the "pool must
// outlive every Handle; a Handle must not be dereferenced after reset" contract.
TEST(SnapshotPoolDeathTest, UseAfterReleaseFaultsUnderAsan) {
  EXPECT_DEATH(
      {
        sim::ScriptedScheduler sched({}, 700);
        sim::Device dev(sim::DeviceConfig{}, sched);
        const uint32_t buf = dev.mem().AllocFram("buf", 64);
        dev.mem().Fill(buf, 64, 0x5A);
        sim::SnapshotPool pool;
        sim::SnapshotPool::Handle h = pool.Acquire();
        dev.SnapshotAtRebootInto(*h);
        sim::DeviceSnapshot* dangling = h.get();
        h.reset();
        volatile uint8_t sink = dangling->mem.fram.at(0);  // poisoned: ASan aborts
        (void)sink;
      },
      "use-after-poison");
}
#endif

}  // namespace
}  // namespace easeio
