// The easelint fixpoint engine: CFG reconstruction from sema's pre-order extents,
// worklist solver behavior (first-reach visits, join counting, the widening valve),
// the fwd/full solution split the byte-identity guarantee rests on, and the static
// region conditions shared with chk::por.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "chk/por.h"
#include "easec/lint/dataflow/cfg.h"
#include "easec/lint/dataflow/domains.h"
#include "easec/lint/dataflow/engine.h"
#include "easec/lint/dataflow/solver.h"
#include "easec/program.h"

namespace easeio::easec::lint::dataflow {
namespace {

std::string ReadFixture(const std::string& relative) {
  const std::string path = std::string(EASEIO_SOURCE_DIR) + "/" + relative;
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

CompileResult CompileFixture(const std::string& relative) {
  CompileResult result = Compile(ReadFixture(relative));
  EXPECT_TRUE(result.ok) << relative << " failed to compile:\n" << result.errors;
  return result;
}

CompileResult CompileSource(const std::string& source) {
  CompileResult result = Compile(source);
  EXPECT_TRUE(result.ok) << "inline program failed to compile:\n" << result.errors;
  return result;
}

uint32_t NvIndex(const Program& ast, const std::string& name) {
  for (uint32_t i = 0; i < ast.nv_decls.size(); ++i) {
    if (ast.nv_decls[i].name == name) {
      return i;
    }
  }
  ADD_FAILURE() << "no __nv declaration named " << name;
  return UINT32_MAX;
}

// First def/use entry of `kind` in the task's range.
uint32_t FindStmt(const Analysis& a, const TaskCfg& cfg, StmtKind kind) {
  for (uint32_t s = cfg.first_stmt(); s < cfg.end_stmt(); ++s) {
    if (a.def_use[s].kind == kind) {
      return s;
    }
  }
  ADD_FAILURE() << "no statement of the requested kind";
  return UINT32_MAX;
}

bool HasEdge(const TaskCfg& cfg, uint32_t from, uint32_t to) {
  for (uint32_t m : cfg.node(from).succ) {
    if (m == to) {
      return true;
    }
  }
  return false;
}

TEST(LintCfg, LinearTaskChainsEntryToExit) {
  const CompileResult compiled = CompileSource(
      "task t() { int16 a = 1; int16 b = a; end_task; }");
  const TaskCfg cfg(compiled.analysis, 0);

  ASSERT_EQ(cfg.node_count(), 5u);  // entry, exit, three statements
  EXPECT_EQ(cfg.edge_count(), 4u);
  EXPECT_TRUE(cfg.back_edges().empty());

  const uint32_t s0 = cfg.NodeForStmt(cfg.first_stmt());
  const uint32_t s1 = cfg.NodeForStmt(cfg.first_stmt() + 1);
  const uint32_t s2 = cfg.NodeForStmt(cfg.first_stmt() + 2);
  EXPECT_TRUE(HasEdge(cfg, TaskCfg::kEntry, s0));
  EXPECT_TRUE(HasEdge(cfg, s0, s1));
  EXPECT_TRUE(HasEdge(cfg, s1, s2));
  EXPECT_TRUE(HasEdge(cfg, s2, TaskCfg::kExit));  // end_task
  EXPECT_EQ(cfg.node(s1).pred, (std::vector<uint32_t>{s0}));
}

TEST(LintCfg, IfForksAndJoins) {
  const CompileResult compiled = CompileSource(
      "task t() {\n"
      "  int16 a = 1;\n"
      "  if (a > 0) { a = 2; } else { a = 3; }\n"
      "  a = 4;\n"
      "  end_task;\n"
      "}");
  const Analysis& a = compiled.analysis;
  const TaskCfg cfg(a, 0);

  const uint32_t if_stmt = FindStmt(a, cfg, StmtKind::kIf);
  const uint32_t cond = cfg.NodeForStmt(if_stmt);
  const uint32_t then_head = cfg.NodeForStmt(if_stmt + 1);
  const uint32_t else_head = cfg.NodeForStmt(a.def_use[if_stmt].else_begin);
  const uint32_t join = cfg.NodeForStmt(a.def_use[if_stmt].subtree_end);

  ASSERT_EQ(cfg.node(cond).succ.size(), 2u);
  EXPECT_TRUE(HasEdge(cfg, cond, then_head));
  EXPECT_TRUE(HasEdge(cfg, cond, else_head));
  EXPECT_TRUE(HasEdge(cfg, then_head, join));
  EXPECT_TRUE(HasEdge(cfg, else_head, join));
  EXPECT_FALSE(HasEdge(cfg, cond, join));  // both branches nonempty
  EXPECT_TRUE(cfg.back_edges().empty());
}

TEST(LintCfg, EmptyElseMakesTheConditionFallThrough) {
  const CompileResult compiled = CompileSource(
      "task t() {\n"
      "  int16 a = 1;\n"
      "  if (a > 0) { a = 2; }\n"
      "  a = 4;\n"
      "  end_task;\n"
      "}");
  const Analysis& a = compiled.analysis;
  const TaskCfg cfg(a, 0);

  const uint32_t if_stmt = FindStmt(a, cfg, StmtKind::kIf);
  const uint32_t cond = cfg.NodeForStmt(if_stmt);
  const uint32_t then_head = cfg.NodeForStmt(if_stmt + 1);
  const uint32_t join = cfg.NodeForStmt(a.def_use[if_stmt].subtree_end);

  EXPECT_TRUE(HasEdge(cfg, cond, then_head));
  EXPECT_TRUE(HasEdge(cfg, cond, join));  // the not-taken path
  EXPECT_TRUE(HasEdge(cfg, then_head, join));
}

TEST(LintCfg, WhileRecordsTheBackEdge) {
  const CompileResult compiled = CompileSource(
      "task t() { int16 i = 0; while (i < 3) { i = i + 1; } end_task; }");
  const Analysis& a = compiled.analysis;
  const TaskCfg cfg(a, 0);

  const uint32_t while_stmt = FindStmt(a, cfg, StmtKind::kWhile);
  const uint32_t header = cfg.NodeForStmt(while_stmt);
  const uint32_t body = cfg.NodeForStmt(while_stmt + 1);
  const uint32_t after = cfg.NodeForStmt(a.def_use[while_stmt].subtree_end);

  EXPECT_TRUE(HasEdge(cfg, header, body));
  EXPECT_TRUE(HasEdge(cfg, header, after));  // loop exit
  EXPECT_TRUE(HasEdge(cfg, body, header));
  ASSERT_EQ(cfg.back_edges().size(), 1u);
  EXPECT_TRUE(cfg.IsBackEdge(body, header));
  EXPECT_FALSE(cfg.IsBackEdge(header, body));
}

TEST(LintCfg, NonAlwaysIoBlockGetsASkipEdge) {
  const CompileResult compiled = CompileSource(
      "__nv int16 out;\n"
      "task t() {\n"
      "  int16 v;\n"
      "  _IO_block_begin(\"Single\");\n"
      "  v = _call_IO(Temp(), \"Always\");\n"
      "  _IO_block_end;\n"
      "  out = v;\n"
      "  end_task;\n"
      "}");
  const Analysis& a = compiled.analysis;
  const TaskCfg cfg(a, 0);

  const uint32_t block_stmt = FindStmt(a, cfg, StmtKind::kIoBlock);
  const uint32_t block = cfg.NodeForStmt(block_stmt);
  const uint32_t after = cfg.NodeForStmt(a.def_use[block_stmt].subtree_end);
  // The runtime may elide a locked non-Always block body on re-execution.
  EXPECT_TRUE(HasEdge(cfg, block, after));
  EXPECT_TRUE(HasEdge(cfg, block, cfg.NodeForStmt(block_stmt + 1)));
}

TEST(LintCfg, MinPathCostWalksBackEdgesAndReportsUnreachable) {
  const CompileResult compiled = CompileSource(
      "task t() {\n"
      "  int16 i = 0;\n"
      "  while (i < 3) { int16 x = i; i = i + 1; }\n"
      "  end_task;\n"
      "}");
  const Analysis& a = compiled.analysis;
  const TaskCfg cfg(a, 0);
  const std::vector<uint64_t> unit(cfg.node_count(), 1);

  const uint32_t while_stmt = FindStmt(a, cfg, StmtKind::kWhile);
  const uint32_t header = cfg.NodeForStmt(while_stmt);
  const uint32_t body_a = cfg.NodeForStmt(while_stmt + 1);
  const uint32_t body_b = cfg.NodeForStmt(while_stmt + 2);

  // Forward within the iteration: a -> b is one hop, endpoints uncharged.
  EXPECT_EQ(MinPathCost(cfg, unit, body_a, body_b), 0u);
  // b -> a exists only around the loop: b -> header -> a charges the header. This
  // is the lap cost the timely-loop-stale query lower-bounds.
  EXPECT_EQ(MinPathCost(cfg, unit, body_b, body_a), 1u);
  // Straight line: entry -> s0 -> header charges s0.
  EXPECT_EQ(MinPathCost(cfg, unit, TaskCfg::kEntry, header), 1u);
  // Control never flows back out of the exit node.
  EXPECT_EQ(MinPathCost(cfg, unit, TaskCfg::kExit, TaskCfg::kEntry), UINT64_MAX);
}

// A domain whose states never grow: Join always reports no growth. The solver must
// still run every reachable node's Transfer exactly once — the first-reach rule. (A
// solver that only queues growing successors silently skips the whole graph for
// bottom-preserving domains; the taint domain's flow-insensitive __nv maps depend on
// every Transfer running.)
struct CountingDomain {
  struct State {};
  explicit CountingDomain(size_t stmts) : transfers(stmts, 0) {}
  bool Join(State&, const State&) { return false; }
  void Transfer(uint32_t stmt, State&) { ++transfers[stmt]; }
  static bool Widen(State&) { return false; }
  std::vector<uint32_t> transfers;
};

TEST(LintSolver, VisitsEveryReachableNodeAtLeastOnce) {
  const CompileResult compiled = CompileSource(
      "task t() {\n"
      "  int16 a = 1;\n"
      "  if (a > 0) { a = 2; } else { a = 3; }\n"
      "  a = 4;\n"
      "  end_task;\n"
      "}");
  const Analysis& a = compiled.analysis;
  const TaskCfg cfg(a, 0);

  CountingDomain dom(a.def_use.size());
  SolveStats stats;
  Solve(cfg, dom, CountingDomain::State{}, /*include_back_edges=*/true,
        /*widen_threshold=*/64, &stats);

  for (uint32_t s = cfg.first_stmt(); s < cfg.end_stmt(); ++s) {
    EXPECT_EQ(dom.transfers[s], 1u) << "statement " << s;
  }
  EXPECT_EQ(stats.iterations, cfg.node_count());  // acyclic: each node pops once
  EXPECT_EQ(stats.joins, 0u);                     // nothing ever grew
}

// An unbounded counter lattice: every trip around the loop grows the header's IN, so
// only the widening valve terminates the solve.
struct CounterDomain {
  static constexpr uint64_t kTop = 1u << 20;
  struct State {
    uint64_t n = 0;
  };
  bool Join(State& into, const State& from) {
    if (from.n > into.n) {
      into.n = from.n;
      return true;
    }
    return false;
  }
  void Transfer(uint32_t, State& s) {
    if (s.n < kTop) {
      ++s.n;
    }
  }
  static bool Widen(State& s) {
    if (s.n >= kTop) {
      return false;
    }
    s.n = kTop;
    return true;
  }
};

TEST(LintSolver, WideningTerminatesAnUnboundedLattice) {
  const CompileResult compiled = CompileSource(
      "task t() { int16 i = 0; while (i < 3) { i = i + 1; } end_task; }");
  const TaskCfg cfg(compiled.analysis, 0);

  CounterDomain dom;
  SolveStats stats;
  const auto in = Solve(cfg, dom, CounterDomain::State{}, /*include_back_edges=*/true,
                        /*widen_threshold=*/4, &stats);

  EXPECT_GE(stats.widenings, 1u);
  EXPECT_LT(stats.iterations, 200u);  // not ~kTop laps
  EXPECT_EQ(in[TaskCfg::kExit].n, CounterDomain::kTop);
}

TEST(LintSolver, ShippedLatticesNeverWiden) {
  const DataflowResult df = [&] {
    const CompileResult compiled =
        CompileFixture("examples/programs/lint/loop_taint.ec");
    return Analyze(compiled.ast, compiled.analysis);
  }();
  EXPECT_EQ(df.stats.widenings, 0u);  // finite powerset lattices
  EXPECT_GT(df.stats.nodes, 0u);
  EXPECT_GT(df.stats.edges, 0u);
  EXPECT_GE(df.stats.iterations, df.stats.nodes);
  EXPECT_GT(df.stats.joins, 0u);
}

// The relation the easeio-lint/1 byte-identity guarantee rests on: on programs the
// straight-line table pass handled, the forward solution's flow-insensitive __nv
// taint maps equal the full fixpoint's — back edges add nothing the /1 queries could
// see. In general the full solution may only *grow* them (a local carrying
// loop-carried taint stored to __nv), never disagree otherwise.
TEST(LintEngine, NvTaintMapsAreMonotoneAcrossSolutions) {
  const char* kStraightLine[] = {
      "examples/programs/lint/clean_control.ec",
      "examples/programs/lint/taint_cross_task.ec",
      "examples/programs/lint/stale_always.ec",
  };
  for (const char* path : kStraightLine) {
    const CompileResult compiled = CompileFixture(path);
    const DataflowResult df = Analyze(compiled.ast, compiled.analysis);
    EXPECT_EQ(df.taint_fwd.guarded_nv, df.taint_full.guarded_nv) << path;
    EXPECT_EQ(df.taint_fwd.always_nv, df.taint_full.always_nv) << path;
  }

  const char* kLoops[] = {
      "examples/programs/lint/loop_taint.ec",
      "examples/programs/lint/loop_timely.ec",
      "examples/programs/lint/clean_loop.ec",
  };
  for (const char* path : kLoops) {
    const CompileResult compiled = CompileFixture(path);
    const DataflowResult df = Analyze(compiled.ast, compiled.analysis);
    ASSERT_EQ(df.taint_fwd.guarded_nv.size(), df.taint_full.guarded_nv.size());
    for (size_t i = 0; i < df.taint_fwd.guarded_nv.size(); ++i) {
      EXPECT_TRUE(std::includes(
          df.taint_full.guarded_nv[i].begin(), df.taint_full.guarded_nv[i].end(),
          df.taint_fwd.guarded_nv[i].begin(), df.taint_fwd.guarded_nv[i].end()))
          << path << " nv " << i;
      EXPECT_TRUE(std::includes(
          df.taint_full.always_nv[i].begin(), df.taint_full.always_nv[i].end(),
          df.taint_fwd.always_nv[i].begin(), df.taint_fwd.always_nv[i].end()))
          << path << " nv " << i;
    }
  }
}

// The loop-carried flow only the full fixpoint sees: in loop_taint.ec the Timely
// reading reaches the next iteration's consumer through a local, around the back
// edge. The forward solution — the table pass's strength — must not contain it.
TEST(LintEngine, LoopCarriedLocalFlowNeedsBackEdges) {
  const CompileResult compiled =
      CompileFixture("examples/programs/lint/loop_taint.ec");
  const Analysis& a = compiled.analysis;
  const DataflowResult df = Analyze(compiled.ast, a);

  uint32_t timely_site = UINT32_MAX;
  uint32_t single_site = UINT32_MAX;
  for (uint32_t s = 0; s < a.sites.size(); ++s) {
    if (a.sites[s].sem == kernel::IoSemantic::kTimely) {
      timely_site = s;
    } else if (a.sites[s].sem == kernel::IoSemantic::kSingle) {
      single_site = s;
    }
  }
  ASSERT_NE(timely_site, UINT32_MAX);
  ASSERT_NE(single_site, UINT32_MAX);

  const uint32_t consumer = df.site_stmt[single_site];
  ASSERT_NE(consumer, UINT32_MAX);
  EXPECT_EQ(df.taint_fwd.stmt_in[consumer].guarded.count(timely_site), 0u);
  EXPECT_EQ(df.taint_full.stmt_in[consumer].guarded.count(timely_site), 1u);
}

// war-path-divergent's defining fact pattern in loop_war.ec: `cache` is written
// before it is read in textual order (so sema's WAR table omits it), but the
// not-taken branch path carries last iteration's read to this iteration's write.
TEST(LintEngine, PathDivergentExposureNeedsBackEdges) {
  const CompileResult compiled =
      CompileFixture("examples/programs/lint/loop_war.ec");
  const Analysis& a = compiled.analysis;
  const DataflowResult df = Analyze(compiled.ast, a);

  const uint32_t cache = NvIndex(compiled.ast, "cache");
  const uint32_t trend = NvIndex(compiled.ast, "trend");

  uint32_t task_id = UINT32_MAX;
  uint32_t write_stmt = UINT32_MAX;
  for (uint32_t s = 0; s < a.def_use.size(); ++s) {
    for (uint32_t nv : a.def_use[s].nv_defs) {
      if (nv == cache) {
        task_id = a.def_use[s].task;
        write_stmt = s;
      }
    }
  }
  ASSERT_NE(write_stmt, UINT32_MAX);

  // Textual order hides the pair from the sema table...
  const TaskInfo& task = a.tasks[task_id];
  EXPECT_EQ(std::count(task.war.begin(), task.war.end(), cache), 0);
  EXPECT_EQ(std::count(task.war.begin(), task.war.end(), trend), 1);
  // ...and only the back-edge solution carries the exposed read to the write.
  EXPECT_EQ(df.war_fwd.exposed_in[write_stmt].count(cache), 0u);
  EXPECT_EQ(df.war_full.exposed_in[write_stmt].count(cache), 1u);
}

TEST(LintEngine, RegionConditionsSummarizeTheProgram) {
  {
    const CompileResult compiled =
        CompileFixture("examples/programs/lint/clean_relay.ec");
    const DataflowResult df = Analyze(compiled.ast, compiled.analysis);
    EXPECT_FALSE(df.program_conditions.war_hazard);
    EXPECT_FALSE(df.program_conditions.io_taint_crossing);
    EXPECT_FALSE(df.program_conditions.value_steered);
    EXPECT_FALSE(df.program_conditions.timely_window);
    EXPECT_TRUE(chk::CollapsibleRegion(df.program_conditions));
  }
  {
    const CompileResult compiled =
        CompileFixture("examples/programs/lint/loop_war.ec");
    const DataflowResult df = Analyze(compiled.ast, compiled.analysis);
    EXPECT_TRUE(df.program_conditions.war_hazard);     // durable defs in the loop
    EXPECT_TRUE(df.program_conditions.value_steered);  // branch on the sensed value
    EXPECT_FALSE(df.program_conditions.timely_window);
    EXPECT_FALSE(chk::CollapsibleRegion(df.program_conditions));
  }
  {
    const CompileResult compiled =
        CompileFixture("examples/programs/lint/loop_timely.ec");
    const DataflowResult df = Analyze(compiled.ast, compiled.analysis);
    EXPECT_TRUE(df.program_conditions.timely_window);
  }
}

}  // namespace
}  // namespace easeio::easec::lint::dataflow
