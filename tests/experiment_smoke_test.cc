// End-to-end smoke tests: every application completes and is consistent under
// continuous power on every runtime, and the paper's headline behaviours hold under
// intermittent power (EaseIO stays consistent where the baselines corrupt memory, and
// wins time on Single-semantics workloads).

#include <gtest/gtest.h>

#include "report/experiment.h"

namespace easeio {
namespace {

using apps::RuntimeKind;
using report::AppKind;
using report::ExperimentConfig;
using report::ExperimentResult;
using report::RunExperiment;
using report::RunSweep;

constexpr RuntimeKind kAllRuntimes[] = {RuntimeKind::kAlpaca, RuntimeKind::kInk,
                                        RuntimeKind::kEaseio, RuntimeKind::kEaseioOp};
constexpr AppKind kAllApps[] = {AppKind::kDma, AppKind::kTemp,    AppKind::kLea,
                                AppKind::kFir, AppKind::kWeather, AppKind::kBranch};

TEST(Smoke, ContinuousPowerAllAppsAllRuntimes) {
  for (RuntimeKind rt : kAllRuntimes) {
    for (AppKind app : kAllApps) {
      ExperimentConfig config;
      config.runtime = rt;
      config.app = app;
      config.continuous = true;
      config.app_options.single_buffer = false;  // baseline-safe configuration
      const ExperimentResult r = RunExperiment(config);
      EXPECT_TRUE(r.run.completed) << ToString(rt) << "/" << ToString(app);
      EXPECT_TRUE(r.consistent) << ToString(rt) << "/" << ToString(app);
      EXPECT_EQ(r.run.stats.power_failures, 0u);
      EXPECT_EQ(r.run.stats.wasted_us, 0.0);
    }
  }
}

TEST(Smoke, IntermittentAllAppsAllRuntimesComplete) {
  for (RuntimeKind rt : kAllRuntimes) {
    for (AppKind app : kAllApps) {
      ExperimentConfig config;
      config.runtime = rt;
      config.app = app;
      config.app_options.single_buffer = false;
      // Short apps can finish before the first emulated failure fires; a small seed
      // sweep guarantees failures are exercised for every pair.
      const report::Aggregate agg = RunSweep(config, 10);
      EXPECT_EQ(agg.correct + agg.incorrect, agg.runs) << ToString(rt) << "/" << ToString(app);
      EXPECT_GT(agg.power_failures, 0u) << ToString(rt) << "/" << ToString(app);
    }
  }
}

TEST(Correctness, EaseioFirAlwaysConsistent) {
  ExperimentConfig config;
  config.runtime = RuntimeKind::kEaseio;
  config.app = AppKind::kFir;
  const report::Aggregate agg = RunSweep(config, 50);
  EXPECT_EQ(agg.incorrect, 0u);
}

TEST(Correctness, BaselinesCorruptFirUnderFailures) {
  for (RuntimeKind rt : {RuntimeKind::kAlpaca, RuntimeKind::kInk}) {
    ExperimentConfig config;
    config.runtime = rt;
    config.app = AppKind::kFir;
    const report::Aggregate agg = RunSweep(config, 50);
    EXPECT_GT(agg.incorrect, 0u) << ToString(rt);
  }
}

TEST(Correctness, EaseioBranchSafety) {
  ExperimentConfig config;
  config.runtime = RuntimeKind::kEaseio;
  config.app = AppKind::kBranch;
  const report::Aggregate agg = RunSweep(config, 100);
  EXPECT_EQ(agg.incorrect, 0u);
}

TEST(Performance, EaseioWinsOnSingleSemanticsWorkload) {
  ExperimentConfig config;
  config.app = AppKind::kDma;
  config.runtime = RuntimeKind::kEaseio;
  const report::Aggregate easeio = RunSweep(config, 30);
  config.runtime = RuntimeKind::kAlpaca;
  const report::Aggregate alpaca = RunSweep(config, 30);
  EXPECT_LT(easeio.total_us, alpaca.total_us);
  EXPECT_LT(easeio.power_failures, alpaca.power_failures);
  EXPECT_LT(easeio.io_reexecutions, alpaca.io_reexecutions);
}

}  // namespace
}  // namespace easeio
