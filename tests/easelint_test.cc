// easelint: golden findings per fixture, zero findings on correct programs,
// byte-identical machine-readable output, and simulator-confirmed witnesses for the
// refutable finding classes.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "easec/lint/certify.h"
#include "easec/lint/lint.h"
#include "easec/lint/witness.h"
#include "easec/program.h"

namespace easeio::easec::lint {
namespace {

std::string ReadFixture(const std::string& relative) {
  const std::string path = std::string(EASEIO_SOURCE_DIR) + "/" + relative;
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

CompileResult CompileFixture(const std::string& relative) {
  CompileResult result = Compile(ReadFixture(relative));
  EXPECT_TRUE(result.ok) << relative << " failed to compile:\n" << result.errors;
  return result;
}

std::vector<std::string> Codes(const LintResult& result) {
  std::vector<std::string> codes;
  for (const Finding& f : result.findings) {
    codes.push_back(f.code);
  }
  return codes;
}

const Finding* FindCode(const LintResult& result, const std::string& code) {
  for (const Finding& f : result.findings) {
    if (f.code == code) {
      return &f;
    }
  }
  return nullptr;
}

TEST(Easelint, CleanProgramsHaveZeroFindings) {
  const char* kClean[] = {
      "examples/programs/lint/clean_control.ec",
      "examples/programs/sample_loop.ec",
      "examples/programs/unsafe_branch.ec",
      "examples/programs/weather.ec",
  };
  for (const char* path : kClean) {
    const LintResult result = Lint(CompileFixture(path));
    EXPECT_TRUE(result.findings.empty())
        << path << " should be clean but got: "
        << RenderText(result, path);
    EXPECT_EQ(result.errors + result.warnings + result.advisories, 0u);
  }
}

TEST(Easelint, TaintCrossTaskFixture) {
  const CompileResult compiled =
      CompileFixture("examples/programs/lint/taint_cross_task.ec");
  const LintResult result = Lint(compiled);
  EXPECT_EQ(Codes(result),
            (std::vector<std::string>{"taint-region-escape", "taint-cross-task"}));

  const Finding* cross = FindCode(result, "taint-cross-task");
  ASSERT_NE(cross, nullptr);
  EXPECT_EQ(cross->severity, Severity::kWarning);
  EXPECT_EQ(cross->subject, "Send");
  EXPECT_EQ(cross->witness_runtime, "easeio");  // Timely producer: refutable
  EXPECT_NE(cross->anchor_site, UINT32_MAX);
  EXPECT_NE(cross->anchor_consumer, UINT32_MAX);

  const Finding* escape = FindCode(result, "taint-region-escape");
  ASSERT_NE(escape, nullptr);
  EXPECT_EQ(escape->subject, "archive");
  EXPECT_TRUE(escape->witness_runtime.empty());  // not refutable by one schedule
}

TEST(Easelint, StaleAlwaysFixture) {
  const LintResult result =
      Lint(CompileFixture("examples/programs/lint/stale_always.ec"));
  EXPECT_EQ(Codes(result), (std::vector<std::string>{"stale-always-into-single",
                                                     "scope-demotion"}));
  const Finding* stale = FindCode(result, "stale-always-into-single");
  ASSERT_NE(stale, nullptr);
  EXPECT_EQ(stale->subject, "Send");
  const Finding* demoted = FindCode(result, "scope-demotion");
  ASSERT_NE(demoted, nullptr);
  EXPECT_EQ(demoted->subject, "Temp");
}

TEST(Easelint, DmaAuditFixture) {
  const LintResult result = Lint(CompileFixture("examples/programs/lint/dma_audit.ec"));
  EXPECT_EQ(Codes(result),
            (std::vector<std::string>{"dma-exclude-unsafe", "dma-bytes-nonliteral",
                                      "dma-overlap", "dma-out-of-bounds"}));
  EXPECT_EQ(result.errors, 2u);    // overlap, out-of-bounds
  EXPECT_EQ(result.warnings, 2u);  // exclude, non-literal bytes
  const Finding* oob = FindCode(result, "dma-out-of-bounds");
  ASSERT_NE(oob, nullptr);
  EXPECT_EQ(oob->subject, "small");
  EXPECT_EQ(oob->severity, Severity::kError);
  // None of the DMA contract violations are refutable by a failure schedule.
  for (const Finding& f : result.findings) {
    EXPECT_TRUE(f.witness_runtime.empty()) << f.code;
  }
}

TEST(Easelint, TimelyWindowFixture) {
  const LintResult result =
      Lint(CompileFixture("examples/programs/lint/timely_window.ec"));
  EXPECT_EQ(Codes(result), (std::vector<std::string>{"timely-infeasible",
                                                     "task-exceeds-on-time"}));
  const Finding* infeasible = FindCode(result, "timely-infeasible");
  ASSERT_NE(infeasible, nullptr);
  EXPECT_EQ(infeasible->severity, Severity::kError);
  EXPECT_EQ(infeasible->anchor_window_us, 2000u);
  const Finding* budget = FindCode(result, "task-exceeds-on-time");
  ASSERT_NE(budget, nullptr);
  EXPECT_EQ(budget->subject, "grind");
  EXPECT_TRUE(budget->witness_runtime.empty());
}

TEST(Easelint, WarDmaFixture) {
  const LintResult result = Lint(CompileFixture("examples/programs/lint/war_dma.ec"));
  EXPECT_EQ(Codes(result), (std::vector<std::string>{"war-dma-invisible"}));
  EXPECT_EQ(result.findings[0].subject, "history");
  EXPECT_EQ(result.findings[0].witness_runtime, "alpaca");
}

TEST(Easelint, FindingsAndJsonAreByteIdenticalAcrossRuns) {
  const CompileResult compiled =
      CompileFixture("examples/programs/lint/taint_cross_task.ec");
  LintResult first = Lint(compiled);
  LintResult second = Lint(compiled);
  SuggestSchedules(compiled, first);
  SuggestSchedules(compiled, second);
  const std::string json_a = RenderJson(first, "fixture");
  const std::string json_b = RenderJson(second, "fixture");
  EXPECT_EQ(json_a, json_b);
  EXPECT_NE(json_a.find("\"schema\":\"easeio-lint/1\""), std::string::npos);
  EXPECT_EQ(RenderText(first, "fixture"), RenderText(second, "fixture"));
}

TEST(Easelint, SuggestSchedulesFillsRefutableFindings) {
  const CompileResult compiled =
      CompileFixture("examples/programs/lint/stale_always.ec");
  LintResult result = Lint(compiled);
  SuggestSchedules(compiled, result);
  for (const Finding& f : result.findings) {
    ASSERT_FALSE(f.witness_runtime.empty()) << f.code;
    EXPECT_EQ(f.suggested_schedule.size(), 1u) << f.code;
    EXPECT_GT(f.suggested_off_us, 0u) << f.code;
    EXPECT_EQ(f.witness, WitnessState::kNotAttempted) << f.code;
  }
}

// The acceptance bar: at least the taint and Timely finding classes must come with
// simulator-confirmed counterexamples, not just static claims.
TEST(Easelint, WitnessConfirmsCrossTaskTaint) {
  const CompileResult compiled =
      CompileFixture("examples/programs/lint/taint_cross_task.ec");
  LintResult result = Lint(compiled);
  ConfirmWitnesses(compiled, result);
  const Finding* cross = FindCode(result, "taint-cross-task");
  ASSERT_NE(cross, nullptr);
  EXPECT_EQ(cross->witness, WitnessState::kConfirmed) << cross->witness_detail;
  EXPECT_EQ(cross->severity, Severity::kWarning);  // confirmed: not downgraded
  EXPECT_NE(cross->witness_detail.find("window"), std::string::npos);
}

TEST(Easelint, WitnessConfirmsTimelyInfeasible) {
  const CompileResult compiled =
      CompileFixture("examples/programs/lint/timely_window.ec");
  LintResult result = Lint(compiled);
  ConfirmWitnesses(compiled, result);
  const Finding* infeasible = FindCode(result, "timely-infeasible");
  ASSERT_NE(infeasible, nullptr);
  EXPECT_EQ(infeasible->witness, WitnessState::kConfirmed) << infeasible->witness_detail;
  EXPECT_EQ(infeasible->severity, Severity::kError);
}

TEST(Easelint, WitnessConfirmsStaleAndDemotionAndWar) {
  {
    const CompileResult compiled =
        CompileFixture("examples/programs/lint/stale_always.ec");
    LintResult result = Lint(compiled);
    ConfirmWitnesses(compiled, result);
    EXPECT_EQ(FindCode(result, "stale-always-into-single")->witness,
              WitnessState::kConfirmed);
    EXPECT_EQ(FindCode(result, "scope-demotion")->witness, WitnessState::kConfirmed);
  }
  {
    const CompileResult compiled = CompileFixture("examples/programs/lint/war_dma.ec");
    LintResult result = Lint(compiled);
    ConfirmWitnesses(compiled, result);
    EXPECT_EQ(FindCode(result, "war-dma-invisible")->witness, WitnessState::kConfirmed);
  }
}

TEST(Easelint, RecountTracksDowngrades) {
  LintResult result;
  Finding f;
  f.code = "x";
  f.severity = Severity::kError;
  result.findings.push_back(f);
  f.severity = Severity::kWarning;
  result.findings.push_back(f);
  Recount(result);
  EXPECT_EQ(result.errors, 1u);
  EXPECT_EQ(result.warnings, 1u);
  result.findings[0].severity = Severity::kAdvisory;
  Recount(result);
  EXPECT_EQ(result.errors, 0u);
  EXPECT_EQ(result.advisories, 1u);
}

TEST(Easelint, LintRejectsNothingOnFailedCompile) {
  const CompileResult bad = Compile("task t() { int16 x = ghost; end_task; }");
  ASSERT_FALSE(bad.ok);
  const LintResult result = Lint(bad);
  EXPECT_TRUE(result.findings.empty());
}

// ---- easeio-lint/2: the full-fixpoint loop/branch classes ----

LintOptions V2() {
  LintOptions options;
  options.v2 = true;
  return options;
}

// The loop fixtures are the acceptance bar for the fixpoint: each carries a hazard
// the straight-line table pass provably cannot report, so under the default (v1)
// schema every one of them must be silent.
TEST(EaselintV2, LoopFixturesAreSilentUnderV1) {
  const char* kLoopFixtures[] = {
      "examples/programs/lint/loop_taint.ec",
      "examples/programs/lint/loop_timely.ec",
      "examples/programs/lint/loop_war.ec",
      "examples/programs/lint/war_dead.ec",
  };
  for (const char* path : kLoopFixtures) {
    const LintResult result = Lint(CompileFixture(path));
    EXPECT_TRUE(result.findings.empty())
        << path << " fired under v1: " << RenderText(result, path);
    EXPECT_EQ(result.schema_version, 1u);
  }
}

TEST(EaselintV2, LoopFixturesFireUnderV2) {
  {
    const LintResult result =
        Lint(CompileFixture("examples/programs/lint/loop_taint.ec"), V2());
    EXPECT_EQ(Codes(result), (std::vector<std::string>{"taint-loop-carried"}));
    EXPECT_EQ(result.schema_version, 2u);
  }
  {
    const LintResult result =
        Lint(CompileFixture("examples/programs/lint/loop_timely.ec"), V2());
    EXPECT_EQ(Codes(result), (std::vector<std::string>{"taint-loop-carried",
                                                       "timely-loop-stale"}));
    const Finding* stale = FindCode(result, "timely-loop-stale");
    ASSERT_NE(stale, nullptr);
    EXPECT_EQ(stale->severity, Severity::kWarning);
    EXPECT_EQ(stale->anchor_window_us, 2000u);
  }
  {
    const LintResult result =
        Lint(CompileFixture("examples/programs/lint/loop_war.ec"), V2());
    EXPECT_EQ(Codes(result), (std::vector<std::string>{"war-path-divergent"}));
    EXPECT_EQ(result.findings[0].subject, "cache");
  }
  {
    const LintResult result =
        Lint(CompileFixture("examples/programs/lint/war_dead.ec"), V2());
    EXPECT_EQ(Codes(result), (std::vector<std::string>{"war-path-divergent"}));
    EXPECT_EQ(result.findings[0].subject, "floor");
  }
}

TEST(EaselintV2, CleanLoopsStayCleanUnderBothSchemas) {
  const char* kClean[] = {
      "examples/programs/lint/clean_loop.ec",
      "examples/programs/lint/clean_relay.ec",
  };
  for (const char* path : kClean) {
    EXPECT_TRUE(Lint(CompileFixture(path)).findings.empty()) << path;
    EXPECT_TRUE(Lint(CompileFixture(path), V2()).findings.empty()) << path;
  }
}

TEST(EaselintV2, WitnessConfirmsLoopFindings) {
  {
    const CompileResult compiled =
        CompileFixture("examples/programs/lint/loop_taint.ec");
    LintResult result = Lint(compiled, V2());
    ConfirmWitnesses(compiled, result);
    const Finding* carried = FindCode(result, "taint-loop-carried");
    ASSERT_NE(carried, nullptr);
    EXPECT_EQ(carried->witness, WitnessState::kConfirmed) << carried->witness_detail;
    EXPECT_EQ(carried->severity, Severity::kWarning);
  }
  {
    const CompileResult compiled =
        CompileFixture("examples/programs/lint/loop_timely.ec");
    LintResult result = Lint(compiled, V2());
    ConfirmWitnesses(compiled, result);
    EXPECT_EQ(FindCode(result, "timely-loop-stale")->witness,
              WitnessState::kConfirmed);
  }
  {
    const CompileResult compiled =
        CompileFixture("examples/programs/lint/loop_war.ec");
    LintResult result = Lint(compiled, V2());
    ConfirmWitnesses(compiled, result);
    EXPECT_EQ(FindCode(result, "war-path-divergent")->witness,
              WitnessState::kConfirmed);
  }
}

// war_dead.ec: the flagged read sits on a branch the boot task pins dead, so the
// replay cannot demonstrate the hazard — the finding must downgrade to advisory (the
// program exits 0) and do so deterministically.
TEST(EaselintV2, RefutedWitnessDowngradesDeterministically) {
  const CompileResult compiled =
      CompileFixture("examples/programs/lint/war_dead.ec");
  std::string first_json;
  for (int round = 0; round < 2; ++round) {
    LintResult result = Lint(compiled, V2());
    ConfirmWitnesses(compiled, result);
    const Finding* divergent = FindCode(result, "war-path-divergent");
    ASSERT_NE(divergent, nullptr);
    EXPECT_EQ(divergent->witness, WitnessState::kUnconfirmed);
    EXPECT_EQ(divergent->severity, Severity::kAdvisory);
    EXPECT_EQ(result.errors + result.warnings, 0u);
    EXPECT_EQ(result.advisories, 1u);
    const std::string json = RenderJson(result, "war_dead");
    if (round == 0) {
      first_json = json;
    } else {
      EXPECT_EQ(json, first_json);
    }
  }
}

// ---- golden corpus: CI compares these bytes; keep the unit test in lockstep ----

struct GoldenCase {
  const char* name;
  bool v2;
};

TEST(EaselintGolden, ReportsMatchTheCheckedInGoldenBytes) {
  const GoldenCase kCases[] = {
      {"clean_control", false}, {"stale_always", false}, {"taint_cross_task", false},
      {"timely_window", false}, {"war_dma", false},      {"dma_audit", false},
      {"clean_loop", true},     {"clean_relay", true},   {"loop_taint", true},
      {"loop_timely", true},    {"loop_war", true},      {"war_dead", true},
  };
  for (const GoldenCase& c : kCases) {
    const std::string source_name =
        std::string("examples/programs/lint/") + c.name + ".ec";
    const CompileResult compiled = CompileFixture(source_name);
    LintOptions options;
    options.v2 = c.v2;

    LintResult suggested = Lint(compiled, options);
    SuggestSchedules(compiled, suggested);
    EXPECT_EQ(RenderJson(suggested, source_name) + "\n",
              ReadFixture("examples/programs/lint/golden/" + std::string(c.name) +
                          ".lint.json"))
        << c.name;

    LintResult witnessed = Lint(compiled, options);
    ConfirmWitnesses(compiled, witnessed);
    EXPECT_EQ(RenderJson(witnessed, source_name) + "\n",
              ReadFixture("examples/programs/lint/golden/" + std::string(c.name) +
                          ".witness.json"))
        << c.name;
  }
}

// ---- --certify: static verdicts cross-validated against exhaust replay ----

TEST(EaselintCertify, CleanProgramsCertify) {
  {
    const CompileResult compiled =
        CompileFixture("examples/programs/lint/clean_control.ec");
    const CertifyReport report = Certify(compiled, CertifyOptions{});
    EXPECT_EQ(report.verdict, "clean-certified");
    EXPECT_EQ(report.violations, 0u);
    EXPECT_GT(report.trials, 0u);
    EXPECT_FALSE(report.por_collapsed);  // durable defs: war_hazard holds
  }
  {
    // All four region conditions proved absent: the static rule may prune, and at
    // depth 2 the post-reboot traces contain pure skip events it actually folds.
    const CompileResult compiled =
        CompileFixture("examples/programs/lint/clean_relay.ec");
    CertifyOptions options;
    options.exhaust = 2;
    const CertifyReport report = Certify(compiled, options);
    EXPECT_EQ(report.verdict, "clean-certified");
    EXPECT_EQ(report.violations, 0u);
    EXPECT_TRUE(report.por_collapsed);
    EXPECT_GT(report.collapsed_instants, 0u);
    EXPECT_GT(report.pair_schedules, 0u);
  }
}

TEST(EaselintCertify, FindingFixturesAreWitnessed) {
  const CompileResult compiled =
      CompileFixture("examples/programs/lint/war_dma.ec");
  const CertifyReport report = Certify(compiled, CertifyOptions{});
  EXPECT_EQ(report.verdict, "findings-witnessed");
  EXPECT_GE(report.confirmed_findings, 1u);
  // The WAR hazard is real: some depth-1 schedules corrupt the untainted slots.
  EXPECT_GT(report.violations, 0u);
  EXPECT_FALSE(report.violating_schedules.empty());
}

TEST(EaselintCertify, DowngradedFindingStillCertifiesClean) {
  const CompileResult compiled =
      CompileFixture("examples/programs/lint/war_dead.ec");
  CertifyOptions options;
  options.v2 = true;
  const CertifyReport report = Certify(compiled, options);
  EXPECT_EQ(report.verdict, "clean-certified");  // advisory only after downgrade
  EXPECT_EQ(report.downgraded_findings, 1u);
  EXPECT_EQ(report.violations, 0u);
}

TEST(EaselintCertify, ReportIsByteIdenticalAcrossJobsCounts) {
  {
    const CompileResult compiled =
        CompileFixture("examples/programs/lint/war_dma.ec");
    CertifyOptions one;
    one.jobs = 1;
    CertifyOptions four;
    four.jobs = 4;
    const std::string a = RenderCertifyJson(Certify(compiled, one), "fixture");
    const std::string b = RenderCertifyJson(Certify(compiled, four), "fixture");
    EXPECT_EQ(a, b);
    EXPECT_NE(a.find("\"schema\":\"easeio-lint-certify/1\""), std::string::npos);
  }
  {
    // The downgrade path too: the refuted-witness advisory must render the same
    // certify bytes at any worker count.
    const CompileResult compiled =
        CompileFixture("examples/programs/lint/war_dead.ec");
    CertifyOptions one;
    one.v2 = true;
    one.jobs = 1;
    CertifyOptions four = one;
    four.jobs = 4;
    const std::string a = RenderCertifyJson(Certify(compiled, one), "fixture");
    const std::string b = RenderCertifyJson(Certify(compiled, four), "fixture");
    EXPECT_EQ(a, b);
    EXPECT_NE(a.find("\"downgraded\":1"), std::string::npos);
  }
}

TEST(EaselintCertify, RenderCoversTheUnsoundShape) {
  CertifyReport report;
  report.verdict = "unsound";
  report.candidate_instants = 3;
  report.trials = 3;
  report.violations = 2;
  report.violating_schedules = {{1500}, {1500, 4200}};
  const std::string json = RenderCertifyJson(report, "crafted");
  EXPECT_NE(json.find("\"verdict\":\"unsound\""), std::string::npos);
  EXPECT_NE(json.find("\"violating_schedules\":[[1500],[1500,4200]]"),
            std::string::npos);
}

}  // namespace
}  // namespace easeio::easec::lint
