// Tests for the deterministic parallel-map utility (platform/parallel.h): in-order
// merge determinism across jobs counts, per-worker state isolation, exception
// propagation, and the ResolveJobs clamping rules.

#include "platform/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace easeio::platform {
namespace {

// A deliberately ill-conditioned per-index value: summing these in different orders
// produces different doubles, so byte-identity across jobs counts proves the merge
// order is fixed.
double Wobble(size_t i) {
  return std::sin(static_cast<double>(i) * 12.9898) * 43758.5453 +
         1.0 / (static_cast<double>(i) + 1.0);
}

TEST(ResolveJobs, ClampsToWorkAndFloor) {
  EXPECT_EQ(ResolveJobs(4, 100), 4u);
  EXPECT_EQ(ResolveJobs(8, 3), 3u);   // never more workers than items
  EXPECT_EQ(ResolveJobs(5, 0), 1u);   // empty input still resolves to one worker
  EXPECT_EQ(ResolveJobs(1, 1000), 1u);
  EXPECT_GE(ResolveJobs(0, 1000), 1u);  // 0 = hardware concurrency, at least 1
}

TEST(ParallelMap, ResultsInIndexOrder) {
  const std::vector<uint64_t> out =
      ParallelMap<uint64_t>(4, 64, [](size_t i) { return static_cast<uint64_t>(i * i); });
  ASSERT_EQ(out.size(), 64u);
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], i * i);
  }
}

TEST(ParallelMap, FloatingPointFoldByteIdenticalAcrossJobs) {
  constexpr size_t kN = 257;  // deliberately not a multiple of any jobs count
  auto fold = [](uint32_t jobs) {
    const std::vector<double> slots = ParallelMap<double>(jobs, kN, Wobble);
    double sum = 0;
    for (double v : slots) {
      sum += v;  // sequential in-order fold, as RunSweep does
    }
    return sum;
  };
  const double serial = fold(1);
  for (uint32_t jobs : {2u, 3u, 8u}) {
    const double parallel = fold(jobs);
    // Exact bit equality, not a tolerance: the whole point of the utility.
    EXPECT_EQ(serial, parallel) << "jobs=" << jobs;
  }
}

TEST(ParallelMap, EmptyInput) {
  const std::vector<int> out = ParallelMap<int>(8, 0, [](size_t) { return 1; });
  EXPECT_TRUE(out.empty());
}

TEST(ParallelForWithState, StateIsPerWorkerAndEveryIndexVisitedOnce) {
  constexpr size_t kN = 500;
  std::vector<uint32_t> visits(kN, 0);
  std::atomic<uint32_t> states_made{0};
  struct Scratch {
    std::thread::id owner;
  };
  ParallelForWithState(
      4, kN,
      [&states_made] {
        states_made.fetch_add(1);
        return Scratch{std::this_thread::get_id()};
      },
      [&visits](Scratch& state, size_t i) {
        // The state handed to fn was built on this same thread — never shared.
        EXPECT_EQ(state.owner, std::this_thread::get_id());
        visits[i] += 1;  // index-addressed slot: no two workers share i
      });
  for (size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(visits[i], 1u) << "index " << i;
  }
  // One state per worker, workers clamped to [1, jobs].
  EXPECT_GE(states_made.load(), 1u);
  EXPECT_LE(states_made.load(), 4u);
}

TEST(ParallelFor, WorkerExceptionPropagatesSerial) {
  EXPECT_THROW(
      ParallelFor(1, 10,
                  [](size_t i) {
                    if (i == 3) {
                      throw std::runtime_error("boom at 3");
                    }
                  }),
      std::runtime_error);
}

TEST(ParallelFor, WorkerExceptionPropagatesParallelWithLowestIndexMessage) {
  try {
    ParallelFor(4, 100, [](size_t i) {
      if (i % 7 == 5) {  // several failing indices; index 5 is the lowest
        throw std::runtime_error("fail@" + std::to_string(i));
      }
    });
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_EQ(what.rfind("fail@", 0), 0u) << what;
    // The surviving exception is one actually raised by a worker; with jobs=1 it is
    // deterministically the lowest index.
  }
  try {
    ParallelFor(1, 100, [](size_t i) {
      if (i % 7 == 5) {
        throw std::runtime_error("fail@" + std::to_string(i));
      }
    });
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "fail@5");
  }
}

TEST(ParallelFor, AbortStopsIssuingNewWork) {
  // After a failure, workers stop pulling indices: with jobs=1 nothing past the
  // throwing index runs.
  std::vector<bool> ran(50, false);
  try {
    ParallelFor(1, 50, [&ran](size_t i) {
      ran[i] = true;
      if (i == 10) {
        throw std::runtime_error("stop");
      }
    });
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error&) {
  }
  for (size_t i = 0; i <= 10; ++i) {
    EXPECT_TRUE(ran[i]) << "index " << i;
  }
  for (size_t i = 11; i < 50; ++i) {
    EXPECT_FALSE(ran[i]) << "index " << i;
  }
}

}  // namespace
}  // namespace easeio::platform
