// Unit tests for the evaluation applications: registration shape (Table 3), option
// handling, and the sensitivity of the consistency checkers (a checker that cannot
// detect corruption would silently validate broken runtimes).

#include <gtest/gtest.h>

#include "apps/apps.h"
#include "apps/runtime_factory.h"
#include "kernel/engine.h"
#include "sim/failure.h"

namespace easeio::apps {
namespace {

namespace k = easeio::kernel;

struct Built {
  std::unique_ptr<sim::Device> dev;
  std::unique_ptr<k::NvManager> nv;
  std::unique_ptr<k::Runtime> rt;
  AppHandle app;
  sim::NeverFailScheduler* sched;
};

Built BuildOn(RuntimeKind kind, AppHandle (*builder)(sim::Device&, k::Runtime&,
                                                     k::NvManager&, const AppOptions&),
              const AppOptions& options = {}) {
  static sim::NeverFailScheduler never;
  Built b;
  b.sched = &never;
  sim::DeviceConfig config;
  config.seed = 3;
  b.dev = std::make_unique<sim::Device>(config, never);
  b.nv = std::make_unique<k::NvManager>(b.dev->mem());
  b.rt = MakeRuntime(kind);
  b.rt->Bind(*b.dev, *b.nv);
  b.app = builder(*b.dev, *b.rt, *b.nv, options);
  return b;
}

AppHandle BuildTempShim(sim::Device& d, k::Runtime& r, k::NvManager& n, const AppOptions&) {
  return BuildTempApp(d, r, n);
}
AppHandle BuildLeaShim(sim::Device& d, k::Runtime& r, k::NvManager& n, const AppOptions&) {
  return BuildLeaApp(d, r, n);
}
AppHandle BuildBranchShim(sim::Device& d, k::Runtime& r, k::NvManager& n, const AppOptions&) {
  return BuildBranchApp(d, r, n);
}

TEST(AppShape, Table3Counts) {
  auto weather = BuildOn(RuntimeKind::kEaseio, BuildWeatherApp);
  EXPECT_EQ(weather.app.num_tasks, 11u);
  EXPECT_EQ(weather.app.num_io_funcs, 5u);
  EXPECT_EQ(weather.app.graph.size(), 11u);
  EXPECT_EQ(weather.rt->dma_sites().size(), 11u);
  EXPECT_EQ(weather.rt->io_blocks().size(), 1u);

  auto fir = BuildOn(RuntimeKind::kEaseio, BuildFirApp);
  EXPECT_EQ(fir.app.num_tasks, 5u);
  EXPECT_EQ(fir.rt->dma_sites().size(), 3u);

  auto dma = BuildOn(RuntimeKind::kEaseio, BuildDmaApp);
  EXPECT_EQ(dma.app.num_tasks, 3u);
  EXPECT_EQ(dma.rt->dma_sites().size(), 1u);

  auto temp = BuildOn(RuntimeKind::kEaseio, BuildTempShim);
  EXPECT_EQ(temp.rt->io_sites().size(), 1u);
  EXPECT_EQ(temp.rt->io_sites()[0].lanes, 40u);
}

TEST(AppShape, ExcludeOptionMarksConstantDmas) {
  AppOptions options;
  options.exclude_const_dma = true;
  auto fir = BuildOn(RuntimeKind::kEaseio, BuildFirApp, options);
  int excluded = 0;
  for (const k::DmaSiteDesc& d : fir.rt->dma_sites()) {
    excluded += d.exclude ? 1 : 0;
  }
  EXPECT_EQ(excluded, 1);  // exactly the coefficient DMA

  auto plain = BuildOn(RuntimeKind::kEaseio, BuildFirApp);
  for (const k::DmaSiteDesc& d : plain.rt->dma_sites()) {
    EXPECT_FALSE(d.exclude);
  }
}

TEST(AppShape, WeatherJobsOptionLoops) {
  AppOptions options;
  options.single_buffer = false;
  options.jobs = 3;
  auto b = BuildOn(RuntimeKind::kEaseio, BuildWeatherApp, options);
  k::Engine engine;
  const k::RunResult r = engine.Run(*b.dev, *b.rt, *b.nv, b.app.graph, b.app.entry);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(b.dev->radio().sends(), 3u);
  EXPECT_TRUE(b.app.check_consistent(*b.dev));
}

// --- Checker sensitivity: every checker must actually detect corruption ---------------------

TEST(CheckerSensitivity, FirCheckerDetectsClobberedOutput) {
  auto b = BuildOn(RuntimeKind::kEaseio, BuildFirApp);
  k::Engine engine;
  ASSERT_TRUE(engine.Run(*b.dev, *b.rt, *b.nv, b.app.graph, b.app.entry).completed);
  ASSERT_TRUE(b.app.check_consistent(*b.dev));

  // Flip one output word: the checker must notice.
  const auto& alloc = b.dev->mem().allocations();
  for (const auto& a : alloc) {
    if (a.name == "fir.io_buf") {
      b.dev->mem().Write16(a.addr, static_cast<uint16_t>(b.dev->mem().Read16(a.addr) + 1));
    }
  }
  EXPECT_FALSE(b.app.check_consistent(*b.dev));
}

TEST(CheckerSensitivity, WeatherCheckerDetectsWrongClassification) {
  AppOptions options;
  options.single_buffer = false;
  auto b = BuildOn(RuntimeKind::kEaseio, BuildWeatherApp, options);
  k::Engine engine;
  ASSERT_TRUE(engine.Run(*b.dev, *b.rt, *b.nv, b.app.graph, b.app.entry).completed);
  ASSERT_TRUE(b.app.check_consistent(*b.dev));

  for (const auto& a : b.dev->mem().allocations()) {
    if (a.name == "wx.result") {
      b.dev->mem().Write16(a.addr, static_cast<uint16_t>(b.dev->mem().Read16(a.addr) ^ 1));
    }
  }
  EXPECT_FALSE(b.app.check_consistent(*b.dev));
}

TEST(CheckerSensitivity, BranchCheckerDetectsDoubleFlags) {
  auto b = BuildOn(RuntimeKind::kEaseio, BuildBranchShim);
  k::Engine engine;
  ASSERT_TRUE(engine.Run(*b.dev, *b.rt, *b.nv, b.app.graph, b.app.entry).completed);
  ASSERT_TRUE(b.app.check_consistent(*b.dev));

  for (const auto& a : b.dev->mem().allocations()) {
    if (a.name == "branch.stdy" || a.name == "branch.alarm") {
      b.dev->mem().Write16(a.addr, 1);  // force both flags on
    }
  }
  EXPECT_FALSE(b.app.check_consistent(*b.dev));
}

TEST(CheckerSensitivity, DmaCheckerDetectsJobUndercount) {
  AppOptions options;
  options.jobs = 2;
  auto b = BuildOn(RuntimeKind::kEaseio, BuildDmaApp, options);
  k::Engine engine;
  ASSERT_TRUE(engine.Run(*b.dev, *b.rt, *b.nv, b.app.graph, b.app.entry).completed);
  ASSERT_TRUE(b.app.check_consistent(*b.dev));

  for (const auto& a : b.dev->mem().allocations()) {
    if (a.name == "dma.jobs") {
      b.dev->mem().Write16(a.addr, 1);  // pretend a job vanished
    }
  }
  EXPECT_FALSE(b.app.check_consistent(*b.dev));
}

TEST(AppShape, LeaAppUsesTheAccelerator) {
  auto b = BuildOn(RuntimeKind::kEaseio, BuildLeaShim);
  k::Engine engine;
  ASSERT_TRUE(engine.Run(*b.dev, *b.rt, *b.nv, b.app.graph, b.app.entry).completed);
  EXPECT_GT(b.dev->lea().invocations(), 0u);
  EXPECT_GT(b.dev->lea().macs(), 10'000u);
}

}  // namespace
}  // namespace easeio::apps
