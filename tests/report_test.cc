// Unit tests for the reporting layer: table rendering, numeric formatting, and the
// experiment harness's aggregation arithmetic.

#include <gtest/gtest.h>

#include "report/experiment.h"
#include "report/table.h"

namespace easeio::report {
namespace {

TEST(Fmt, FixedPrecision) {
  EXPECT_EQ(Fmt(1.2345, 2), "1.23");
  EXPECT_EQ(Fmt(1.2345, 0), "1");
  EXPECT_EQ(Fmt(-3.5, 1), "-3.5");
}

TEST(TextTable, RendersAlignedColumns) {
  TextTable table({"A", "Bee", "C"});
  table.AddRow({"1", "2", "3"});
  table.AddRow({"longer", "x"});  // short rows are padded
  ::testing::internal::CaptureStdout();
  table.Print();
  const std::string out = ::testing::internal::GetCapturedStdout();
  EXPECT_NE(out.find("| A"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
  // Same number of '|' separators on every row.
  size_t first_bar_count = 0;
  size_t line_start = 0;
  int line_no = 0;
  while (line_start < out.size()) {
    const size_t line_end = out.find('\n', line_start);
    const std::string line = out.substr(line_start, line_end - line_start);
    if (!line.empty() && line[0] == '|') {
      const size_t bars = static_cast<size_t>(std::count(line.begin(), line.end(), '|'));
      if (first_bar_count == 0) {
        first_bar_count = bars;
      } else {
        EXPECT_EQ(bars, first_bar_count) << "line " << line_no;
      }
    }
    if (line_end == std::string::npos) {
      break;
    }
    line_start = line_end + 1;
    ++line_no;
  }
}

TEST(Bars, RendersSegmentsAndLegend) {
  ::testing::internal::CaptureStdout();
  PrintStackedBars({{"row", {{"App", 2.0}, {"Waste", 1.0}}}}, "ms", 30);
  const std::string out = ::testing::internal::GetCapturedStdout();
  EXPECT_NE(out.find("row"), std::string::npos);
  EXPECT_NE(out.find("3.0 ms"), std::string::npos);
  EXPECT_NE(out.find("App 2.0"), std::string::npos);
  EXPECT_NE(out.find('#'), std::string::npos);
  EXPECT_NE(out.find('='), std::string::npos);
}

TEST(Sweep, AggregatesMeansAndSums) {
  ExperimentConfig config;
  config.app = AppKind::kBranch;
  config.runtime = apps::RuntimeKind::kEaseio;
  config.continuous = true;  // deterministic per-seed
  const Aggregate agg = RunSweep(config, 4);
  EXPECT_EQ(agg.runs, 4u);
  EXPECT_EQ(agg.completed, 4u);
  EXPECT_EQ(agg.correct, 4u);
  EXPECT_EQ(agg.power_failures, 0u);
  // Means over identical-cost runs equal a single run's cost.
  const ExperimentResult one = RunExperiment(config);
  EXPECT_NEAR(agg.total_us, one.run.stats.TotalUs(), 1.0);
}

TEST(Sweep, SeedsProduceDistinctSchedules) {
  ExperimentConfig config;
  config.app = AppKind::kTemp;
  config.runtime = apps::RuntimeKind::kAlpaca;
  config.seed = 1;
  const ExperimentResult a = RunExperiment(config);
  config.seed = 2;
  const ExperimentResult b = RunExperiment(config);
  EXPECT_NE(a.run.on_us, b.run.on_us);
}

TEST(Experiment, FootprintSnapshotIsPopulated) {
  ExperimentConfig config;
  config.app = AppKind::kFir;
  config.runtime = apps::RuntimeKind::kEaseio;
  config.continuous = true;
  const ExperimentResult r = RunExperiment(config);
  EXPECT_GT(r.fram_app_bytes, 2000u);   // signal + coefficients
  EXPECT_GT(r.fram_meta_bytes, 4096u);  // includes the privatization buffer
  EXPECT_GT(r.sram_bytes, 4000u);       // LEA staging
  EXPECT_GT(r.code_bytes, 1000u);
}

TEST(Experiment, EaseioPrivBufferSizeIsConfigurable) {
  ExperimentConfig config;
  config.app = AppKind::kTemp;  // no DMA: the buffer is never allocated
  config.runtime = apps::RuntimeKind::kEaseio;
  config.continuous = true;
  config.easeio_priv_buffer_bytes = 1234;
  const ExperimentResult r = RunExperiment(config);
  // Lazy allocation: a DMA-free app pays no privatization buffer at all.
  EXPECT_LT(r.fram_meta_bytes, 1500u);
  ExperimentConfig with_dma = config;
  with_dma.app = AppKind::kDma;
  with_dma.easeio_priv_buffer_bytes = 8192;
  const ExperimentResult r2 = RunExperiment(with_dma);
  EXPECT_GE(r2.fram_meta_bytes, 8192u);  // the configured buffer is allocated in full
}

}  // namespace
}  // namespace easeio::report
