// Unit tests for the reporting layer: table rendering, numeric formatting, and the
// experiment harness's aggregation arithmetic.

#include <gtest/gtest.h>

#include "report/experiment.h"
#include "report/table.h"

namespace easeio::report {
namespace {

TEST(Fmt, FixedPrecision) {
  EXPECT_EQ(Fmt(1.2345, 2), "1.23");
  EXPECT_EQ(Fmt(1.2345, 0), "1");
  EXPECT_EQ(Fmt(-3.5, 1), "-3.5");
}

TEST(TextTable, RendersAlignedColumns) {
  TextTable table({"A", "Bee", "C"});
  table.AddRow({"1", "2", "3"});
  table.AddRow({"longer", "x"});  // short rows are padded
  ::testing::internal::CaptureStdout();
  table.Print();
  const std::string out = ::testing::internal::GetCapturedStdout();
  EXPECT_NE(out.find("| A"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
  // Same number of '|' separators on every row.
  size_t first_bar_count = 0;
  size_t line_start = 0;
  int line_no = 0;
  while (line_start < out.size()) {
    const size_t line_end = out.find('\n', line_start);
    const std::string line = out.substr(line_start, line_end - line_start);
    if (!line.empty() && line[0] == '|') {
      const size_t bars = static_cast<size_t>(std::count(line.begin(), line.end(), '|'));
      if (first_bar_count == 0) {
        first_bar_count = bars;
      } else {
        EXPECT_EQ(bars, first_bar_count) << "line " << line_no;
      }
    }
    if (line_end == std::string::npos) {
      break;
    }
    line_start = line_end + 1;
    ++line_no;
  }
}

TEST(Bars, RendersSegmentsAndLegend) {
  ::testing::internal::CaptureStdout();
  PrintStackedBars({{"row", {{"App", 2.0}, {"Waste", 1.0}}}}, "ms", 30);
  const std::string out = ::testing::internal::GetCapturedStdout();
  EXPECT_NE(out.find("row"), std::string::npos);
  EXPECT_NE(out.find("3.0 ms"), std::string::npos);
  EXPECT_NE(out.find("App 2.0"), std::string::npos);
  EXPECT_NE(out.find('#'), std::string::npos);
  EXPECT_NE(out.find('='), std::string::npos);
}

TEST(Sweep, AggregatesMeansAndSums) {
  ExperimentConfig config;
  config.app = AppKind::kBranch;
  config.runtime = apps::RuntimeKind::kEaseio;
  config.continuous = true;  // deterministic per-seed
  const Aggregate agg = RunSweep(config, 4);
  EXPECT_EQ(agg.runs, 4u);
  EXPECT_EQ(agg.completed, 4u);
  EXPECT_EQ(agg.correct, 4u);
  EXPECT_EQ(agg.power_failures, 0u);
  // Means over identical-cost runs equal a single run's cost.
  const ExperimentResult one = RunExperiment(config);
  EXPECT_NEAR(agg.total_us, one.run.stats.TotalUs(), 1.0);
}

TEST(Sweep, ParallelAggregateByteIdenticalToSerial) {
  // RunSweep's contract (report/experiment.h): results are byte-identical for any
  // jobs count, floating-point means included, because per-seed results land in
  // index-addressed slots and are folded sequentially in seed order.
  ExperimentConfig config;
  config.app = AppKind::kTemp;  // failure-driven: per-seed results genuinely differ
  config.runtime = apps::RuntimeKind::kEaseio;
  const Aggregate serial = RunSweep(config, 50, /*jobs=*/1);
  for (uint32_t jobs : {2u, 8u}) {
    const Aggregate parallel = RunSweep(config, 50, jobs);
    EXPECT_EQ(serial.runs, parallel.runs);
    EXPECT_EQ(serial.completed, parallel.completed);
    EXPECT_EQ(serial.correct, parallel.correct);
    EXPECT_EQ(serial.incorrect, parallel.incorrect);
    EXPECT_EQ(serial.power_failures, parallel.power_failures);
    EXPECT_EQ(serial.io_reexecutions, parallel.io_reexecutions);
    EXPECT_EQ(serial.io_skipped, parallel.io_skipped);
    // Exact equality on doubles, not EXPECT_NEAR: the determinism contract.
    EXPECT_EQ(serial.total_us, parallel.total_us) << "jobs=" << jobs;
    EXPECT_EQ(serial.app_us, parallel.app_us) << "jobs=" << jobs;
    EXPECT_EQ(serial.overhead_us, parallel.overhead_us) << "jobs=" << jobs;
    EXPECT_EQ(serial.wasted_us, parallel.wasted_us) << "jobs=" << jobs;
    EXPECT_EQ(serial.energy_mj, parallel.energy_mj) << "jobs=" << jobs;
    EXPECT_EQ(serial.wall_us, parallel.wall_us) << "jobs=" << jobs;
  }
}

TEST(Sweep, MatchesHandRolledSerialFold) {
  // Replicates the pre-parallel RunSweep loop (run seeds base..base+n-1 in order,
  // accumulate, divide by runs) and checks the rebuilt implementation still computes
  // exactly the same aggregate.
  ExperimentConfig config;
  config.app = AppKind::kTemp;
  config.runtime = apps::RuntimeKind::kAlpaca;
  constexpr uint32_t kRuns = 20;
  Aggregate expected;
  expected.runs = kRuns;
  for (uint32_t i = 0; i < kRuns; ++i) {
    ExperimentConfig c = config;
    c.seed = config.seed + i;
    const ExperimentResult r = RunExperiment(c);
    expected.total_us += r.run.stats.TotalUs();
    expected.app_us += r.run.stats.app_us;
    expected.overhead_us += r.run.stats.overhead_us;
    expected.wasted_us += r.run.stats.wasted_us;
    expected.energy_mj += r.run.energy_j * 1e3;
    expected.wall_us += static_cast<double>(r.run.wall_us);
    expected.power_failures += r.run.stats.power_failures;
    expected.io_reexecutions += r.run.stats.io_redundant + r.run.stats.dma_redundant;
    expected.io_skipped += r.run.stats.io_skipped + r.run.stats.dma_skipped;
    expected.completed += r.run.completed ? 1 : 0;
    if (r.consistent) {
      ++expected.correct;
    } else {
      ++expected.incorrect;
    }
  }
  expected.total_us /= kRuns;
  expected.app_us /= kRuns;
  expected.overhead_us /= kRuns;
  expected.wasted_us /= kRuns;
  expected.energy_mj /= kRuns;
  expected.wall_us /= kRuns;

  const Aggregate actual = RunSweep(config, kRuns, /*jobs=*/4);
  EXPECT_EQ(expected.completed, actual.completed);
  EXPECT_EQ(expected.correct, actual.correct);
  EXPECT_EQ(expected.incorrect, actual.incorrect);
  EXPECT_EQ(expected.power_failures, actual.power_failures);
  EXPECT_EQ(expected.io_reexecutions, actual.io_reexecutions);
  EXPECT_EQ(expected.io_skipped, actual.io_skipped);
  EXPECT_EQ(expected.total_us, actual.total_us);
  EXPECT_EQ(expected.app_us, actual.app_us);
  EXPECT_EQ(expected.overhead_us, actual.overhead_us);
  EXPECT_EQ(expected.wasted_us, actual.wasted_us);
  EXPECT_EQ(expected.energy_mj, actual.energy_mj);
  EXPECT_EQ(expected.wall_us, actual.wall_us);
}

TEST(Sweep, SeedsProduceDistinctSchedules) {
  ExperimentConfig config;
  config.app = AppKind::kTemp;
  config.runtime = apps::RuntimeKind::kAlpaca;
  config.seed = 1;
  const ExperimentResult a = RunExperiment(config);
  config.seed = 2;
  const ExperimentResult b = RunExperiment(config);
  EXPECT_NE(a.run.on_us, b.run.on_us);
}

TEST(Experiment, FootprintSnapshotIsPopulated) {
  ExperimentConfig config;
  config.app = AppKind::kFir;
  config.runtime = apps::RuntimeKind::kEaseio;
  config.continuous = true;
  const ExperimentResult r = RunExperiment(config);
  EXPECT_GT(r.fram_app_bytes, 2000u);   // signal + coefficients
  EXPECT_GT(r.fram_meta_bytes, 4096u);  // includes the privatization buffer
  EXPECT_GT(r.sram_bytes, 4000u);       // LEA staging
  EXPECT_GT(r.code_bytes, 1000u);
}

TEST(Experiment, EaseioPrivBufferSizeIsConfigurable) {
  ExperimentConfig config;
  config.app = AppKind::kTemp;  // no DMA: the buffer is never allocated
  config.runtime = apps::RuntimeKind::kEaseio;
  config.continuous = true;
  config.easeio_priv_buffer_bytes = 1234;
  const ExperimentResult r = RunExperiment(config);
  // Lazy allocation: a DMA-free app pays no privatization buffer at all.
  EXPECT_LT(r.fram_meta_bytes, 1500u);
  ExperimentConfig with_dma = config;
  with_dma.app = AppKind::kDma;
  with_dma.easeio_priv_buffer_bytes = 8192;
  const ExperimentResult r2 = RunExperiment(with_dma);
  EXPECT_GE(r2.fram_meta_bytes, 8192u);  // the configured buffer is allocated in full
}

}  // namespace
}  // namespace easeio::report
