// Tests for the schedule-space pruning layer (PR: state-hash dedup + POR):
//   * platform/hash primitives: SHA-256 vectors, Mix64/HashBytes64 behaviour;
//   * StateHasher: deterministic canonical encodings, dirty-page cache equivalence
//     with a cold hasher, sensitivity to every encoded component;
//   * DedupTable: verified membership under forced probe-bucket collisions — two
//     states sharing a 64-bit probe but differing in bytes stay distinct;
//   * GapClasses / MakePrunePolicy: the idempotent-region equivalence rule and the
//     per-cell prune gate;
//   * end-to-end: pruned exploration is byte-identical to unpruned, and dedup
//     actually fires on a prunable cell (which requires the runtime metadata mask —
//     unmasked timestamp words would make every trial's image unique).

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "apps/registry.h"
#include "apps/runtime_factory.h"
#include "chk/explorer.h"
#include "chk/invariants.h"
#include "chk/por.h"
#include "chk/statehash.h"
#include "platform/hash.h"
#include "sim/memory.h"
#include "sim/probe.h"

namespace easeio {
namespace {

// --- platform/hash ----------------------------------------------------------------------

TEST(PlatformHash, Sha256KnownVectors) {
  // FIPS 180-2 test vectors.
  EXPECT_EQ(platform::Sha256Hex(""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(platform::Sha256Hex("abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(PlatformHash, Sha256DigestMatchesHex) {
  const std::array<uint8_t, 32> digest = platform::Sha256Digest("abc");
  std::string hex;
  for (uint8_t b : digest) {
    char buf[3];
    std::snprintf(buf, sizeof buf, "%02x", b);
    hex += buf;
  }
  EXPECT_EQ(hex, platform::Sha256Hex("abc"));
}

TEST(PlatformHash, Mix64AndHashBytes64Behave) {
  // Deterministic, and a one-bit input change diffuses.
  EXPECT_EQ(platform::Mix64(42), platform::Mix64(42));
  EXPECT_NE(platform::Mix64(42), platform::Mix64(43));

  const char a[] = "the quick brown fox";
  const char b[] = "the quick brown fix";
  EXPECT_EQ(platform::HashBytes64(a, sizeof a), platform::HashBytes64(a, sizeof a));
  EXPECT_NE(platform::HashBytes64(a, sizeof a), platform::HashBytes64(b, sizeof b));
  EXPECT_NE(platform::HashBytes64(a, sizeof a), platform::HashBytes64(a, sizeof a - 1));
  EXPECT_NE(platform::HashBytes64(a, sizeof a, 0), platform::HashBytes64(a, sizeof a, 1));
}

// --- StateHasher ------------------------------------------------------------------------

struct FingerprintRig {
  sim::Memory mem{1024, 4096};
  std::unique_ptr<kernel::Runtime> rt = apps::MakeRuntime(apps::RuntimeKind::kEaseio);
  chk::EventScanState scan;

  chk::StateKey Key(chk::StateHasher& hasher, kernel::TaskId paused = 3) {
    chk::StateKey key;
    hasher.BeginTrial(*rt);
    EXPECT_TRUE(hasher.Fingerprint(mem, *rt, paused, scan, &key));
    EXPECT_TRUE(key.valid);
    return key;
  }
};

TEST(StateHasher, FingerprintIsDeterministic) {
  FingerprintRig rig;
  const uint32_t a = rig.mem.AllocFram("a", 300);
  for (uint32_t i = 0; i < 300; ++i) {
    rig.mem.Write8(a + i, static_cast<uint8_t>(i * 13 + 5));
  }
  chk::StateHasher h1, h2;
  const chk::StateKey k1 = rig.Key(h1);
  const chk::StateKey k2 = rig.Key(h2);
  EXPECT_EQ(k1.probe, k2.probe);
  EXPECT_EQ(k1.canonical, k2.canonical);
}

TEST(StateHasher, DirtyPageCacheMatchesColdHasher) {
  FingerprintRig rig;
  // Span several snapshot pages so the cache has something to skip.
  const uint32_t a = rig.mem.AllocFram("a", 4 * sim::Memory::kSnapshotPageSize);
  rig.mem.Fill(a, 4 * sim::Memory::kSnapshotPageSize, 0x3C);

  chk::StateHasher warm;
  const chk::StateKey before = rig.Key(warm);

  // Dirty exactly one page; the warm hasher rehashes only that page, a cold hasher
  // rehashes everything — the canonical encodings must still agree byte for byte.
  rig.mem.Write8(a + 2 * sim::Memory::kSnapshotPageSize + 7, 0xA1);
  const chk::StateKey warm_after = rig.Key(warm);
  chk::StateHasher cold;
  const chk::StateKey cold_after = rig.Key(cold);

  EXPECT_NE(before.canonical, warm_after.canonical);
  EXPECT_EQ(warm_after.canonical, cold_after.canonical);
  EXPECT_EQ(warm_after.probe, cold_after.probe);
}

TEST(StateHasher, EncodesEveryObservableComponent) {
  FingerprintRig rig;
  const uint32_t a = rig.mem.AllocFram("a", 64);
  rig.mem.Fill(a, 64, 0x11);
  chk::StateHasher h;
  const chk::StateKey base = rig.Key(h);

  // Paused task identity.
  EXPECT_NE(rig.Key(h, 4).canonical, base.canonical);

  // Durable memory content.
  rig.mem.Write8(a + 9, 0x12);
  const chk::StateKey mem_changed = rig.Key(h);
  EXPECT_NE(mem_changed.canonical, base.canonical);
  rig.mem.Write8(a + 9, 0x11);
  EXPECT_EQ(rig.Key(h).canonical, base.canonical);

  // Event-scan fold state: locks and prefix violations distinguish states.
  rig.scan.io_lane_stride = 2;
  rig.scan.io_locked = {0, 1};
  const chk::StateKey locked = rig.Key(h);
  EXPECT_NE(locked.canonical, base.canonical);

  chk::Violation v;
  v.invariant = chk::Invariant::kSingleReexec;
  v.subject = "site";
  v.detail = "detail";
  rig.scan.violations.push_back(v);
  EXPECT_NE(rig.Key(h).canonical, locked.canonical);
}

// --- DedupTable -------------------------------------------------------------------------

chk::StateKey MakeKey(uint64_t probe, const std::string& canonical) {
  chk::StateKey key;
  key.valid = true;
  key.probe = probe;
  key.canonical = canonical;
  return key;
}

TEST(DedupTable, LookupVerifiesAndCounts) {
  chk::DedupTable table;
  const chk::StateKey k = MakeKey(platform::HashBytes64("s1", 2), "s1");
  EXPECT_FALSE(table.Lookup(k));
  table.Insert(k);
  EXPECT_EQ(table.size(), 1u);
  EXPECT_TRUE(table.Lookup(k));
  EXPECT_EQ(table.hits(), 1u);

  // Re-inserting an identical state is a no-op, not a duplicate entry.
  table.Insert(k);
  EXPECT_EQ(table.size(), 1u);
}

TEST(DedupTable, ProbeCollisionNeverForgesEquality) {
  // The seeded pair: identical 64-bit probes, different canonical bytes. With
  // probe_bits = 0 every state shares one bucket, so this exercises the full
  // SHA-256 + byte-compare verification chain deterministically.
  chk::DedupTable table(/*probe_bits=*/0);
  const chk::StateKey k1 = MakeKey(0xDEADBEEF, "state-one");
  const chk::StateKey k2 = MakeKey(0xDEADBEEF, "state-two");

  table.Insert(k1);
  EXPECT_FALSE(table.Lookup(k2)) << "colliding probe must not alias different bytes";
  EXPECT_GT(table.probe_collisions(), 0u);
  table.Insert(k2);
  EXPECT_EQ(table.size(), 2u);

  // Both remain independently retrievable.
  EXPECT_TRUE(table.Lookup(k1));
  EXPECT_TRUE(table.Lookup(k2));
  EXPECT_EQ(table.hits(), 2u);
}

TEST(DedupTable, InvalidKeysOptOut) {
  chk::DedupTable table;
  chk::StateKey k = MakeKey(7, "bytes");
  k.valid = false;
  table.Insert(k);
  EXPECT_EQ(table.size(), 0u);
  EXPECT_FALSE(table.Lookup(k));
  EXPECT_EQ(table.hits(), 0u);
}

// --- GapClasses / PrunePolicy -----------------------------------------------------------

std::vector<sim::ProbeEvent> EventsAt(std::initializer_list<uint64_t> instants) {
  std::vector<sim::ProbeEvent> events;
  for (uint64_t t : instants) {
    sim::ProbeEvent ev{};
    ev.kind = sim::ProbeKind::kNvWrite;
    ev.on_us = t;
    events.push_back(ev);
  }
  return events;
}

TEST(GapClasses, GapInteriorCollapsesEventAdjacentStaysSingleton) {
  chk::GapClasses gc;
  gc.Build(EventsAt({100, 200}), /*floor=*/0);
  EXPECT_EQ(gc.barrier_count(), 2u);

  // Interior of the (100, 200) gap: one shared, collapsible class.
  const uint64_t t150 = gc.TokenFor(150);
  EXPECT_TRUE(chk::GapClasses::Collapsible(t150));
  EXPECT_EQ(gc.TokenFor(120), t150);
  EXPECT_EQ(gc.TokenFor(198), t150);

  // At an event, or one tick before one (the trace's pre-event probe of mid-op
  // state): unique singletons.
  EXPECT_FALSE(chk::GapClasses::Collapsible(gc.TokenFor(100)));
  EXPECT_FALSE(chk::GapClasses::Collapsible(gc.TokenFor(199)));
  EXPECT_FALSE(chk::GapClasses::Collapsible(gc.TokenFor(200)));
  EXPECT_NE(gc.TokenFor(100), gc.TokenFor(200));

  // Different gaps are different classes.
  EXPECT_NE(gc.TokenFor(50), t150);
  EXPECT_NE(gc.TokenFor(250), t150);
}

TEST(GapClasses, DuplicateEventInstantsAndFloor) {
  std::vector<sim::ProbeEvent> events = EventsAt({100, 100, 300});
  chk::GapClasses gc;
  gc.Build(events, /*floor=*/200);
  // The 100s fall below the floor; only 300 remains a barrier.
  EXPECT_EQ(gc.barrier_count(), 1u);
  EXPECT_TRUE(chk::GapClasses::Collapsible(gc.TokenFor(250)));
  EXPECT_EQ(gc.TokenFor(210), gc.TokenFor(250));
  EXPECT_FALSE(chk::GapClasses::Collapsible(gc.TokenFor(300)));
}

TEST(PrunePolicy, RepresentativeMatchesTraceContract) {
  // The shared chk <-> lint invariant: the canonical representative of the window
  // after an event is the first instant past it.
  EXPECT_EQ(chk::RepresentativeAfter(100), 101u);
}

TEST(PrunePolicy, CollapsibleRegionRequiresAllFourAbsent) {
  chk::RegionConditions c;
  EXPECT_TRUE(chk::CollapsibleRegion(c));
  for (bool chk::RegionConditions::*field :
       {&chk::RegionConditions::war_hazard, &chk::RegionConditions::io_taint_crossing,
        &chk::RegionConditions::value_steered, &chk::RegionConditions::timely_window}) {
    chk::RegionConditions one;
    one.*field = true;
    EXPECT_FALSE(chk::CollapsibleRegion(one));
  }
}

// --- End-to-end pruning -----------------------------------------------------------------

chk::ExploreConfig SmallConfig(apps::AppKind app, apps::RuntimeKind rt) {
  chk::ExploreConfig cfg;
  cfg.app = app;
  cfg.runtime = rt;
  cfg.depth = 2;
  cfg.budget = 400;
  cfg.jobs = 2;
  return cfg;
}

TEST(Pruning, ExplorationIsByteIdenticalWithPruningOff) {
  for (const auto& [app, rt] :
       {std::pair{apps::AppKind::kDma, apps::RuntimeKind::kEaseio},
        std::pair{apps::AppKind::kWeather, apps::RuntimeKind::kSamoyed},
        // A cell the policy disables (Timely window), as a control.
        std::pair{apps::AppKind::kTemp, apps::RuntimeKind::kEaseio}}) {
    chk::ExploreConfig pruned = SmallConfig(app, rt);
    chk::ExploreConfig unpruned = pruned;
    unpruned.use_pruning = false;
    const std::string a = chk::ToJson(chk::Explore(pruned), /*include_timing=*/false);
    const std::string b = chk::ToJson(chk::Explore(unpruned), /*include_timing=*/false);
    EXPECT_EQ(a, b) << "app=" << static_cast<int>(app) << " rt=" << static_cast<int>(rt);
  }
}

TEST(Pruning, DedupFiresOnPrunableCell) {
  // Requires the EaseIO timestamp-word mask: without it every trial's durable image
  // embeds its unique failure time and no two states could ever alias.
  chk::ExploreConfig cfg = SmallConfig(apps::AppKind::kDma, apps::RuntimeKind::kEaseio);
  const chk::ExploreResult res = chk::Explore(cfg);
  EXPECT_GT(res.trials_pruned, 0u);
  EXPECT_GT(res.dedup_hits, 0u);
}

TEST(Pruning, PolicyDisablesOnTimelyAndValueSteeredCells) {
  for (const auto& [app, rt] :
       {std::pair{apps::AppKind::kTemp, apps::RuntimeKind::kEaseio},
        std::pair{apps::AppKind::kBranch, apps::RuntimeKind::kEaseio}}) {
    chk::ExploreConfig cfg = SmallConfig(app, rt);
    const chk::ExploreResult res = chk::Explore(cfg);
    EXPECT_EQ(res.trials_pruned, 0u) << "app=" << static_cast<int>(app);
    EXPECT_EQ(res.dedup_hits, 0u) << "app=" << static_cast<int>(app);
  }
}

TEST(Exhaust, CertificateAccountingIsConsistent) {
  chk::ExploreConfig cfg;
  cfg.app = apps::AppKind::kLea;
  cfg.runtime = apps::RuntimeKind::kEaseio;
  cfg.exhaust = 1;
  cfg.jobs = 2;
  const chk::ExploreResult res = chk::Explore(cfg);
  ASSERT_TRUE(res.has_certificate);
  const auto& c = res.certificate;
  EXPECT_EQ(c.exhaust, 1u);
  EXPECT_EQ(c.schedules_covered, res.schedules);
  EXPECT_EQ(res.schedules_skipped, 0u);
  EXPECT_EQ(c.schedules_covered, c.d1_classes + c.d1_members_collapsed);
  EXPECT_EQ(c.trials_executed, c.d1_classes + c.pair_classes - c.states_deduped);
  EXPECT_GT(c.reduction_ratio, 1.0);  // lea is prunable; some reduction must happen
}

TEST(Exhaust, DeterministicAcrossJobsAndVersusUnpruned) {
  chk::ExploreConfig cfg;
  cfg.app = apps::AppKind::kDma;
  cfg.runtime = apps::RuntimeKind::kEaseio;
  cfg.exhaust = 1;
  cfg.jobs = 1;
  const std::string j1 = chk::ToJson(chk::Explore(cfg), /*include_timing=*/false);
  cfg.jobs = 4;
  const std::string j4 = chk::ToJson(chk::Explore(cfg), /*include_timing=*/false);
  EXPECT_EQ(j1, j4);

  // The certificate (a deterministic function of the spec) survives pruning-off runs
  // too: with use_pruning = false the classes degenerate to singletons but the
  // verdict fields stay identical.
  cfg.use_pruning = false;
  const chk::ExploreResult unpruned = chk::Explore(cfg);
  ASSERT_TRUE(unpruned.has_certificate);
  EXPECT_EQ(unpruned.certificate.d1_members_collapsed, 0u);
  EXPECT_EQ(unpruned.certificate.states_deduped, 0u);
}

}  // namespace
}  // namespace easeio
