// Unit tests for EaseIO's re-execution semantics (Sections 3.1-3.3, 4.2).
//
// These tests drive the runtime services directly with a hand-controlled device:
// `Fail()` emulates a power failure at an exact program point (fold attempt, advance
// off-time, clear SRAM, notify the runtime), which makes every skip/re-execute
// decision deterministic and observable.

#include <gtest/gtest.h>

#include "core/easeio_runtime.h"
#include "kernel/engine.h"
#include "sim/failure.h"

namespace easeio {
namespace {

namespace k = easeio::kernel;

class SemanticsTest : public ::testing::Test {
 protected:
  SemanticsTest()
      : scheduler_({}, /*off_us=*/1000),
        dev_(MakeConfig(), scheduler_),
        nv_(dev_.mem()),
        ctx_(dev_, rt_, nv_) {
    rt_.Bind(dev_, nv_);
    ctx_.SetCurrentTaskForTest(0);
    dev_.Begin();
  }

  static sim::DeviceConfig MakeConfig() {
    sim::DeviceConfig config;
    config.seed = 1;
    return config;
  }

  // Emulates a power failure at the current instant with the given dark time.
  void Fail(uint64_t off_us = 1000) {
    scheduler_.set_off_us(off_us);
    dev_.Reboot();
    rt_.OnReboot();
  }

  // A configurable scripted scheduler whose off-time tests can change per failure.
  class OffScheduler : public sim::ScriptedScheduler {
   public:
    OffScheduler(std::vector<uint64_t> fail_at, uint64_t off_us)
        : ScriptedScheduler(std::move(fail_at), off_us) {}
    void set_off_us(uint64_t off) { off_ = off; }
    uint64_t OffTimeUs(Xorshift64Star& rng) override {
      return off_ == 0 ? ScriptedScheduler::OffTimeUs(rng) : off_;
    }

   private:
    uint64_t off_ = 0;
  };

  // An I/O op that counts executions and returns a fresh value each time.
  k::IoOp Counter(int* count) {
    return [count](k::TaskCtx& ctx) {
      ctx.dev().Cpu(100);
      return static_cast<int16_t>(1000 + (*count)++);
    };
  }

  OffScheduler scheduler_;
  sim::Device dev_;
  k::NvManager nv_;
  rt::EaseioRuntime rt_;
  k::TaskCtx ctx_;
};

// --- Single ---------------------------------------------------------------------------

TEST_F(SemanticsTest, SingleExecutesExactlyOnceAcrossReboots) {
  const k::IoSiteId site = rt_.RegisterIoSite({0, "s", 1, k::IoSemantic::kSingle});
  int count = 0;
  EXPECT_EQ(rt_.CallIo(ctx_, site, 0, Counter(&count)), 1000);
  EXPECT_TRUE(rt_.SiteDone(site));

  Fail();
  // Re-executed task reaches the same site: skipped, last value restored.
  EXPECT_EQ(rt_.CallIo(ctx_, site, 0, Counter(&count)), 1000);
  EXPECT_EQ(count, 1);
  EXPECT_EQ(dev_.stats().io_skipped, 1u);
}

TEST_F(SemanticsTest, SingleRunsAgainAfterTaskCommit) {
  const k::IoSiteId site = rt_.RegisterIoSite({0, "s", 1, k::IoSemantic::kSingle});
  int count = 0;
  rt_.CallIo(ctx_, site, 0, Counter(&count));
  rt_.OnTaskCommit(ctx_);  // the task finished: its I/O state is invalidated
  EXPECT_FALSE(rt_.SiteDone(site));
  rt_.CallIo(ctx_, site, 0, Counter(&count));
  EXPECT_EQ(count, 2);  // a new incarnation is new work
}

// --- Timely ---------------------------------------------------------------------------

TEST_F(SemanticsTest, TimelySkipsWhileFresh) {
  const k::IoSiteId site = rt_.RegisterIoSite({0, "t", 1, k::IoSemantic::kTimely, 10'000});
  int count = 0;
  EXPECT_EQ(rt_.CallIo(ctx_, site, 0, Counter(&count)), 1000);
  Fail(/*off_us=*/2000);  // 2 ms dark: still inside the 10 ms window
  EXPECT_EQ(rt_.CallIo(ctx_, site, 0, Counter(&count)), 1000);
  EXPECT_EQ(count, 1);
}

TEST_F(SemanticsTest, TimelyReExecutesWhenExpired) {
  const k::IoSiteId site = rt_.RegisterIoSite({0, "t", 1, k::IoSemantic::kTimely, 10'000});
  int count = 0;
  rt_.CallIo(ctx_, site, 0, Counter(&count));
  Fail(/*off_us=*/15'000);  // dark past the freshness window
  EXPECT_EQ(rt_.CallIo(ctx_, site, 0, Counter(&count)), 1001);
  EXPECT_EQ(count, 2);
}

TEST_F(SemanticsTest, TimelyExpiresFromOnTimeToo) {
  const k::IoSiteId site = rt_.RegisterIoSite({0, "t", 1, k::IoSemantic::kTimely, 10'000});
  int count = 0;
  rt_.CallIo(ctx_, site, 0, Counter(&count));
  dev_.Cpu(12'000);  // the reading goes stale during execution, no failure needed
  rt_.CallIo(ctx_, site, 0, Counter(&count));
  EXPECT_EQ(count, 2);
}

// --- Always ---------------------------------------------------------------------------

TEST_F(SemanticsTest, AlwaysReExecutesEveryAttempt) {
  const k::IoSiteId site = rt_.RegisterIoSite({0, "a", 1, k::IoSemantic::kAlways});
  int count = 0;
  rt_.CallIo(ctx_, site, 0, Counter(&count));
  Fail();
  rt_.CallIo(ctx_, site, 0, Counter(&count));
  EXPECT_EQ(count, 2);
  EXPECT_EQ(dev_.stats().io_skipped, 0u);
  EXPECT_EQ(dev_.stats().io_redundant, 1u);
}

// --- Lanes (loops) ----------------------------------------------------------------------

TEST_F(SemanticsTest, LanesTrackCompletionIndependently) {
  const k::IoSiteId site = rt_.RegisterIoSite({0, "loop", 4, k::IoSemantic::kSingle});
  int count = 0;
  rt_.CallIo(ctx_, site, 0, Counter(&count));
  rt_.CallIo(ctx_, site, 1, Counter(&count));
  Fail();
  // Lanes 0 and 1 completed; 2 and 3 still need their first execution.
  EXPECT_EQ(rt_.CallIo(ctx_, site, 0, Counter(&count)), 1000);
  EXPECT_EQ(rt_.CallIo(ctx_, site, 1, Counter(&count)), 1001);
  EXPECT_EQ(rt_.CallIo(ctx_, site, 2, Counter(&count)), 1002);
  EXPECT_EQ(rt_.CallIo(ctx_, site, 3, Counter(&count)), 1003);
  EXPECT_EQ(count, 4);
}

// --- Blocks and scope precedence (Section 3.3.1) ------------------------------------------

TEST_F(SemanticsTest, SatisfiedSingleBlockSkipsEverythingInside) {
  const k::IoBlockId blk = rt_.RegisterIoBlock({0, "b", k::IoSemantic::kSingle});
  const k::IoSiteId always =
      rt_.RegisterIoSite({0, "a", 1, k::IoSemantic::kAlways, 0, {}, blk});
  int count = 0;

  rt_.IoBlockBegin(ctx_, blk);
  rt_.CallIo(ctx_, always, 0, Counter(&count));
  rt_.IoBlockEnd(ctx_, blk);
  EXPECT_TRUE(rt_.BlockDone(blk));

  Fail();
  // The completed Single block overrides the inner Always annotation: nothing re-runs.
  rt_.IoBlockBegin(ctx_, blk);
  EXPECT_EQ(rt_.CallIo(ctx_, always, 0, Counter(&count)), 1000);
  rt_.IoBlockEnd(ctx_, blk);
  EXPECT_EQ(count, 1);
}

TEST_F(SemanticsTest, ExpiredTimelyBlockForcesInnerSingleToReExecute) {
  const k::IoBlockId blk = rt_.RegisterIoBlock({0, "b", k::IoSemantic::kTimely, 10'000});
  const k::IoSiteId single =
      rt_.RegisterIoSite({0, "s", 1, k::IoSemantic::kSingle, 0, {}, blk});
  int count = 0;

  rt_.IoBlockBegin(ctx_, blk);
  rt_.CallIo(ctx_, single, 0, Counter(&count));
  rt_.IoBlockEnd(ctx_, blk);

  Fail(/*off_us=*/20'000);  // block constraint violated
  rt_.IoBlockBegin(ctx_, blk);
  EXPECT_EQ(rt_.CallIo(ctx_, single, 0, Counter(&count)), 1001);
  rt_.IoBlockEnd(ctx_, blk);
  EXPECT_EQ(count, 2);  // Single re-ran because the enclosing block expired
}

TEST_F(SemanticsTest, FreshTimelyBlockSkipsInnerAlways) {
  const k::IoBlockId blk = rt_.RegisterIoBlock({0, "b", k::IoSemantic::kTimely, 10'000});
  const k::IoSiteId always =
      rt_.RegisterIoSite({0, "a", 1, k::IoSemantic::kAlways, 0, {}, blk});
  int count = 0;

  rt_.IoBlockBegin(ctx_, blk);
  rt_.CallIo(ctx_, always, 0, Counter(&count));
  rt_.IoBlockEnd(ctx_, blk);

  Fail(/*off_us=*/1000);  // still fresh
  rt_.IoBlockBegin(ctx_, blk);
  rt_.CallIo(ctx_, always, 0, Counter(&count));
  rt_.IoBlockEnd(ctx_, blk);
  EXPECT_EQ(count, 1);
}

TEST_F(SemanticsTest, OuterBlockOverridesInnerBlock) {
  // Figure 4: a Single outer block around a Timely inner block. Once the outer block
  // completed, even an expired inner block must not re-execute.
  const k::IoBlockId outer = rt_.RegisterIoBlock({0, "outer", k::IoSemantic::kSingle});
  const k::IoBlockId inner =
      rt_.RegisterIoBlock({0, "inner", k::IoSemantic::kTimely, 10'000, outer});
  const k::IoSiteId site =
      rt_.RegisterIoSite({0, "p", 1, k::IoSemantic::kSingle, 0, {}, inner});
  int count = 0;

  rt_.IoBlockBegin(ctx_, outer);
  rt_.IoBlockBegin(ctx_, inner);
  rt_.CallIo(ctx_, site, 0, Counter(&count));
  rt_.IoBlockEnd(ctx_, inner);
  rt_.IoBlockEnd(ctx_, outer);

  Fail(/*off_us=*/50'000);  // inner window long expired
  rt_.IoBlockBegin(ctx_, outer);
  rt_.IoBlockBegin(ctx_, inner);
  rt_.CallIo(ctx_, site, 0, Counter(&count));
  rt_.IoBlockEnd(ctx_, inner);
  rt_.IoBlockEnd(ctx_, outer);
  EXPECT_EQ(count, 1);  // outer Single has higher scope: nothing re-executed
}

TEST_F(SemanticsTest, InterruptedBlockResumesInnerOpsByTheirOwnSemantics) {
  // A block that never completed: inner ops keep their own flags (Figure 3 — temp
  // completed before the failure is not re-read when the block resumes, humd runs).
  const k::IoBlockId blk = rt_.RegisterIoBlock({0, "b", k::IoSemantic::kSingle});
  const k::IoSiteId temp =
      rt_.RegisterIoSite({0, "temp", 1, k::IoSemantic::kTimely, 50'000, {}, blk});
  const k::IoSiteId humd =
      rt_.RegisterIoSite({0, "humd", 1, k::IoSemantic::kAlways, 0, {}, blk});
  int temp_count = 0;
  int humd_count = 0;

  rt_.IoBlockBegin(ctx_, blk);
  rt_.CallIo(ctx_, temp, 0, Counter(&temp_count));
  Fail();  // dies between the two reads; the block flag is not set

  rt_.IoBlockBegin(ctx_, blk);
  rt_.CallIo(ctx_, temp, 0, Counter(&temp_count));  // fresh: skipped
  rt_.CallIo(ctx_, humd, 0, Counter(&humd_count));
  rt_.IoBlockEnd(ctx_, blk);
  EXPECT_EQ(temp_count, 1);
  EXPECT_EQ(humd_count, 1);
}

// --- Data dependence (Section 3.3.2) --------------------------------------------------------

TEST_F(SemanticsTest, ConsumerReExecutesWhenProducerRan) {
  const k::IoSiteId temp = rt_.RegisterIoSite({0, "temp", 1, k::IoSemantic::kTimely, 5'000});
  const k::IoSiteId send =
      rt_.RegisterIoSite({0, "send", 1, k::IoSemantic::kSingle, 0, {temp}});
  int temp_count = 0;
  int send_count = 0;

  rt_.CallIo(ctx_, temp, 0, Counter(&temp_count));
  rt_.CallIo(ctx_, send, 0, Counter(&send_count));

  Fail(/*off_us=*/8'000);  // temp expired, send is Single-complete
  rt_.CallIo(ctx_, temp, 0, Counter(&temp_count));  // re-reads
  rt_.CallIo(ctx_, send, 0, Counter(&send_count));  // must re-send the fresh value
  EXPECT_EQ(temp_count, 2);
  EXPECT_EQ(send_count, 2);
}

TEST_F(SemanticsTest, ConsumerSkipsWhenProducerSkipped) {
  const k::IoSiteId temp = rt_.RegisterIoSite({0, "temp", 1, k::IoSemantic::kTimely, 60'000});
  const k::IoSiteId send =
      rt_.RegisterIoSite({0, "send", 1, k::IoSemantic::kSingle, 0, {temp}});
  int temp_count = 0;
  int send_count = 0;

  rt_.CallIo(ctx_, temp, 0, Counter(&temp_count));
  rt_.CallIo(ctx_, send, 0, Counter(&send_count));
  Fail();
  rt_.CallIo(ctx_, temp, 0, Counter(&temp_count));
  rt_.CallIo(ctx_, send, 0, Counter(&send_count));
  EXPECT_EQ(temp_count, 1);
  EXPECT_EQ(send_count, 1);
}

// --- Unsafe-branch protection (Section 3.5) ---------------------------------------------------

TEST_F(SemanticsTest, RestoredValuePreservesControlFlow) {
  const k::IoSiteId site = rt_.RegisterIoSite({0, "s", 1, k::IoSemantic::kSingle});
  int16_t observed_first = 0;
  int16_t observed_second = 0;
  int count = 0;

  observed_first = rt_.CallIo(ctx_, site, 0, Counter(&count));
  Fail();
  // Even though a real sensor would now return something else, the restored private
  // copy guarantees the same branch decisions.
  observed_second = rt_.CallIo(ctx_, site, 0, [](k::TaskCtx&) {
    ADD_FAILURE() << "skipped operation must not execute";
    return static_cast<int16_t>(-1);
  });
  EXPECT_EQ(observed_first, observed_second);
}

// --- Commit atomicity -------------------------------------------------------------------------

TEST_F(SemanticsTest, CommitInvalidationIsAllOrNothing) {
  // Two Single sites committed together: a failure *during* the commit must leave
  // either both flags set (commit retried) or both cleared (commit landed). The
  // engine-level failure-injection sweep in property_test.cc covers every instant;
  // here we check the two boundary states directly.
  const k::IoSiteId a = rt_.RegisterIoSite({0, "a", 1, k::IoSemantic::kSingle});
  const k::IoSiteId b = rt_.RegisterIoSite({0, "b", 1, k::IoSemantic::kSingle});
  int count = 0;
  rt_.CallIo(ctx_, a, 0, Counter(&count));
  rt_.CallIo(ctx_, b, 0, Counter(&count));
  EXPECT_TRUE(rt_.SiteDone(a));
  EXPECT_TRUE(rt_.SiteDone(b));
  rt_.OnTaskCommit(ctx_);
  EXPECT_FALSE(rt_.SiteDone(a));
  EXPECT_FALSE(rt_.SiteDone(b));
}

}  // namespace
}  // namespace easeio
