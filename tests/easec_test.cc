// EaseC front-end tests: lexing, parsing, semantic analysis (lanes, blocks,
// dependence, regions, WAR), the source-to-source transform, and execution of compiled
// programs on the simulated device under all runtimes.

#include <gtest/gtest.h>

#include "apps/runtime_factory.h"
#include "easec/lexer.h"
#include "easec/parser.h"
#include "easec/program.h"
#include "easec/transform.h"
#include "kernel/engine.h"
#include "sim/failure.h"

namespace easeio::easec {
namespace {

// The paper's Figure 3/4 flavoured program: a Single block with a Timely temperature
// and an Always humidity read, a data-dependent send, a branch on the reading, and a
// DMA staging step.
constexpr const char* kWeatherSource = R"(
__nv int16 stdy;
__nv int16 alarm;
__nv int16 temp_out;
__nv int16 humd_out;
__nv int16 payload[4];
__nv int16 image[64];
__nv int16 staging[64];

task sense() {
  int16 temp;
  int16 humd;
  _IO_block_begin("Single");
  temp = _call_IO(Temp(), "Timely", 10);
  humd = _call_IO(Humd(), "Always");
  _IO_block_end;
  temp_out = temp;
  humd_out = humd;
  if (temp < 100) {
    stdy = 1;
  } else {
    alarm = 1;
  }
  delay(3000);
  next_task(capture);
}

task capture() {
  _call_IO(Capture(image, 128), "Single");
  delay(2000);
  next_task(process);
}

task process() {
  _DMA_copy(&staging[0], &image[0], 128);
  int16 sum = 0;
  repeat (4) {
    sum = sum + staging[0];
  }
  payload[0] = temp_out;
  payload[1] = humd_out;
  payload[2] = sum;
  next_task(send_data);
}

task send_data() {
  _call_IO(Send(payload, 8), "Single");
  delay(1500);
  end_task;
}
)";

TEST(Lexer, TokenisesAnnotatedSource) {
  Diagnostics diags;
  Lexer lexer("task t() { int16 x = _call_IO(Temp(), \"Timely\", 10); }", diags);
  const std::vector<Token> tokens = lexer.Lex();
  ASSERT_FALSE(diags.HasErrors()) << diags.ToString();
  ASSERT_GE(tokens.size(), 10u);
  EXPECT_EQ(tokens[0].kind, Tok::kTask);
  EXPECT_EQ(tokens[1].kind, Tok::kIdent);
  EXPECT_EQ(tokens.back().kind, Tok::kEof);
}

TEST(Lexer, ReportsUnknownCharacters) {
  Diagnostics diags;
  Lexer lexer("task t() { x = 1 ^ 2; }", diags);
  lexer.Lex();
  EXPECT_TRUE(diags.HasErrors());
}

TEST(Lexer, HandlesCommentsAndHex) {
  Diagnostics diags;
  Lexer lexer("// line\n/* block */ 0x1F", diags);
  const std::vector<Token> tokens = lexer.Lex();
  ASSERT_FALSE(diags.HasErrors());
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0].int_value, 31);
}

TEST(Parser, ParsesTheWeatherProgram) {
  CompileResult result = Compile(kWeatherSource);
  ASSERT_TRUE(result.ok) << result.errors;
  EXPECT_EQ(result.ast.nv_decls.size(), 7u);
  EXPECT_EQ(result.ast.tasks.size(), 4u);
}

TEST(Parser, RejectsUnbalancedIoBlocks) {
  const CompileResult result = Compile("task t() { _IO_block_end; end_task; }");
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.errors.find("without a matching begin"), std::string::npos);
}

TEST(Parser, RejectsUnknownSemantic) {
  const CompileResult result =
      Compile("task t() { int16 x = _call_IO(Temp(), \"Sometimes\"); end_task; }");
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.errors.find("unknown re-execution semantic"), std::string::npos);
}

TEST(Sema, ExtractsSitesBlocksAndSemantics) {
  CompileResult result = Compile(kWeatherSource);
  ASSERT_TRUE(result.ok) << result.errors;
  const Analysis& a = result.analysis;

  ASSERT_EQ(a.sites.size(), 4u);  // Temp, Humd, Capture, Send
  EXPECT_EQ(a.sites[0].fn_name, "Temp");
  EXPECT_EQ(a.sites[0].sem, kernel::IoSemantic::kTimely);
  EXPECT_EQ(a.sites[0].window_us, 10'000u);
  EXPECT_EQ(a.sites[1].sem, kernel::IoSemantic::kAlways);
  ASSERT_EQ(a.blocks.size(), 1u);
  EXPECT_EQ(a.blocks[0].sem, kernel::IoSemantic::kSingle);
  EXPECT_EQ(a.sites[0].block, 0u);
  EXPECT_EQ(a.sites[1].block, 0u);
  EXPECT_EQ(a.sites[2].block, UINT32_MAX);
}

TEST(Sema, DetectsRegionsAndDma) {
  CompileResult result = Compile(kWeatherSource);
  ASSERT_TRUE(result.ok) << result.errors;
  const Analysis& a = result.analysis;

  ASSERT_EQ(a.dmas.size(), 1u);
  EXPECT_EQ(a.dmas[0].region_index, 0u);
  // `process` is task index 2: one DMA -> two regions; payload writes land in region 1.
  ASSERT_EQ(a.tasks[2].regions.size(), 2u);
  EXPECT_TRUE(a.tasks[2].regions[0].empty());
  EXPECT_FALSE(a.tasks[2].regions[1].empty());
}

TEST(Sema, TracksWarAndShared) {
  const CompileResult result = Compile(R"(
__nv int16 counter;
task t() {
  counter = counter + 1;
  end_task;
}
)");
  ASSERT_TRUE(result.ok) << result.errors;
  ASSERT_EQ(result.analysis.tasks[0].war.size(), 1u);   // read-before-write
  ASSERT_EQ(result.analysis.tasks[0].shared.size(), 1u);
}

TEST(Sema, BuildsLaneArraysForRepeatLoops) {
  const CompileResult result = Compile(R"(
__nv int16 out[8];
task t() {
  repeat (8) {
    int16 v = _call_IO(Temp(), "Always");
    out[0] = v;
  }
  end_task;
}
)");
  ASSERT_TRUE(result.ok) << result.errors;
  ASSERT_EQ(result.analysis.sites.size(), 1u);
  EXPECT_EQ(result.analysis.sites[0].lanes, 8u);
  EXPECT_GE(result.analysis.sites[0].lane_slot, 0);
}

TEST(Sema, DetectsIoDataDependence) {
  const CompileResult result = Compile(R"(
__nv int16 payload[2];
task t() {
  int16 temp = _call_IO(Temp(), "Timely", 50);
  payload[0] = temp;
  _call_IO(Send(payload, 4), "Single");
  end_task;
}
)");
  ASSERT_TRUE(result.ok) << result.errors;
  ASSERT_EQ(result.analysis.sites.size(), 2u);
  // Send depends on Temp through the payload store.
  ASSERT_EQ(result.analysis.sites[1].depends_on.size(), 1u);
  EXPECT_EQ(result.analysis.sites[1].depends_on[0], 0u);
}

TEST(Sema, RelatesDmaToProducingIo) {
  const CompileResult result = Compile(R"(
__nv int16 reading;
__nv int16 log_buf[16];
task t() {
  reading = _call_IO(Temp(), "Always");
  _DMA_copy(&log_buf[0], &reading, 2);
  end_task;
}
)");
  ASSERT_TRUE(result.ok) << result.errors;
  ASSERT_EQ(result.analysis.dmas.size(), 1u);
  EXPECT_EQ(result.analysis.dmas[0].related_io, 0u);
}

TEST(Sema, RejectsDmaInsideControlFlow) {
  const CompileResult result = Compile(R"(
__nv int16 a[4];
__nv int16 b[4];
task t() {
  if (a[0] < 1) {
    _DMA_copy(&b[0], &a[0], 8);
  }
  end_task;
}
)");
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.errors.find("top level"), std::string::npos);
}

TEST(Sema, RejectsNestedCallIo) {
  const CompileResult result = Compile(R"(
__nv int16 p[2];
task t() {
  int16 x = _call_IO(Send(p, _call_IO(Temp(), "Always")), "Single");
  end_task;
}
)");
  EXPECT_FALSE(result.ok);
}

TEST(Sema, RejectsUndeclaredIdentifiers) {
  const CompileResult result = Compile("task t() { ghost = 1; end_task; }");
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.errors.find("undeclared"), std::string::npos);
}

TEST(Transform, EmitsLockFlagGuards) {
  CompileResult result = Compile(kWeatherSource);
  ASSERT_TRUE(result.ok) << result.errors;
  const std::string& src = result.transformed_source;

  // Per-site metadata and the Figure-5 guard structure.
  EXPECT_NE(src.find("__nv int16 lock_Temp_sense_0;"), std::string::npos) << src;
  EXPECT_NE(src.find("priv_Temp_sense_0 = Temp();"), std::string::npos);
  EXPECT_NE(src.find("lock_Temp_sense_0 = SET;"), std::string::npos);
  // Timely guard checks the timestamp.
  EXPECT_NE(src.find("GetTime() - ts_Temp_sense_0"), std::string::npos);
  // Scope precedence: sites inside the block also consult the block dependence flag.
  EXPECT_NE(src.find("depend_flg_blk0_sense"), std::string::npos);
  // Regional privatization around the DMA in `process`.
  EXPECT_NE(src.find("regionalPrivFlag_process_1"), std::string::npos);
  EXPECT_NE(src.find("/* recover */"), std::string::npos);
}

// --- __sram staging and the compile-time privatization-buffer check ------------------------

constexpr const char* kStagedFirSource = R"(
__nv int16 signal[32];
__nv int16 result;
__sram int16 staging[32];

task fill() {
  repeat (32) {
    signal[0] = 7;
  }
  int16 i = 0;
  while (i < 32) {
    signal[i] = i * 3;
    i = i + 1;
  }
  next_task(process);
}

task process() {
  _DMA_copy(&staging[0], &signal[0], 64);
  int16 acc = 0;
  int16 i = 0;
  while (i < 32) {
    acc = acc + staging[i];
    i = i + 1;
  }
  _DMA_copy(&signal[0], &staging[0], 64);
  result = acc;
  end_task;
}
)";

TEST(Sram, StagingBuffersCompileAndClassify) {
  const CompileResult result = Compile(kStagedFirSource);
  ASSERT_TRUE(result.ok) << result.errors;
  ASSERT_EQ(result.analysis.dmas.size(), 2u);
  EXPECT_FALSE(result.analysis.dmas[0].src_sram);
  EXPECT_TRUE(result.analysis.dmas[0].dst_sram);   // NV -> V: Private at run time
  EXPECT_TRUE(result.analysis.dmas[1].src_sram);   // V -> NV: Single at run time
  EXPECT_EQ(result.analysis.private_dma_bytes, 64u);
  EXPECT_NE(result.transformed_source.find("__sram int16 staging[32];"), std::string::npos);
}

TEST(Sram, BufferCheckRejectsOversizedPrivateTransfers) {
  CompileOptions options;
  options.dma_priv_buffer_bytes = 32;  // smaller than the 64-byte Private transfer
  const CompileResult result = Compile(kStagedFirSource, options);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.errors.find("privatization buffer"), std::string::npos);
}

TEST(Sram, ExcludedTransfersDoNotCountAgainstTheBuffer) {
  const std::string source = std::string(kStagedFirSource);
  std::string excluded = source;
  const std::string needle = "_DMA_copy(&staging[0], &signal[0], 64);";
  excluded.replace(excluded.find(needle), needle.size(),
                   "_DMA_copy(&staging[0], &signal[0], 64, Exclude);");
  CompileOptions options;
  options.dma_priv_buffer_bytes = 32;
  const CompileResult result = Compile(excluded, options);
  EXPECT_TRUE(result.ok) << result.errors;
  EXPECT_EQ(result.analysis.private_dma_bytes, 0u);
}

TEST(Sram, StagedPipelineSurvivesFailuresOnEaseio) {
  const CompileResult compiled = Compile(kStagedFirSource);
  ASSERT_TRUE(compiled.ok) << compiled.errors;

  // Golden: continuous run.
  auto run = [&](std::vector<uint64_t> fails) {
    sim::ScriptedScheduler sched(std::move(fails), 700);
    sim::DeviceConfig config;
    config.seed = 2;
    sim::Device dev(config, sched);
    kernel::NvManager nv(dev.mem());
    auto rt = apps::MakeRuntime(apps::RuntimeKind::kEaseio);
    rt->Bind(dev, nv);
    InstantiatedProgram prog = Instantiate(compiled, dev, *rt, nv);
    kernel::Engine engine;
    const kernel::RunResult r = engine.Run(dev, *rt, nv, prog.graph, prog.entry);
    EXPECT_TRUE(r.completed);
    // result = sum(i*3, i<32) = 3*496; signal written back unchanged.
    const uint32_t result_addr = nv.slot(prog.nv_slots[1]).addr;
    return dev.mem().ReadI16(result_addr);
  };

  const int16_t golden = run({});
  EXPECT_EQ(golden, 3 * 496);
  for (uint64_t t = 53; t < 2400; t += 151) {
    EXPECT_EQ(run({t}), golden) << "failure at " << t;
  }
}

// --- Execution ---------------------------------------------------------------------------

struct RunOutcome {
  bool completed = false;
  int16_t stdy = 0;
  int16_t alarm = 0;
  uint64_t sends = 0;
  uint64_t failures = 0;
};

RunOutcome RunWeatherDsl(apps::RuntimeKind kind, uint64_t seed, bool continuous) {
  CompileResult compiled = Compile(kWeatherSource);
  EXPECT_TRUE(compiled.ok) << compiled.errors;

  sim::NeverFailScheduler never;
  sim::UniformTimerScheduler timer(5000, 20000, 200, 1000);
  sim::DeviceConfig config;
  config.seed = seed;
  sim::Device dev(config, continuous ? static_cast<sim::FailureScheduler&>(never)
                                     : static_cast<sim::FailureScheduler&>(timer));
  kernel::NvManager nv(dev.mem());
  auto rt = apps::MakeRuntime(kind);
  rt->Bind(dev, nv);
  InstantiatedProgram prog = Instantiate(compiled, dev, *rt, nv);

  kernel::Engine engine;
  const kernel::RunResult run = engine.Run(dev, *rt, nv, prog.graph, prog.entry);

  RunOutcome out;
  out.completed = run.completed;
  out.stdy = dev.mem().ReadI16(nv.slot(prog.nv_slots[0]).addr);
  out.alarm = dev.mem().ReadI16(nv.slot(prog.nv_slots[1]).addr);
  out.sends = dev.radio().sends();
  out.failures = run.stats.power_failures;
  return out;
}

TEST(Execution, CompiledProgramRunsOnAllRuntimes) {
  for (apps::RuntimeKind kind :
       {apps::RuntimeKind::kAlpaca, apps::RuntimeKind::kInk, apps::RuntimeKind::kEaseio}) {
    const RunOutcome out = RunWeatherDsl(kind, /*seed=*/1, /*continuous=*/true);
    EXPECT_TRUE(out.completed) << ToString(kind);
    EXPECT_EQ(out.stdy + out.alarm, 1) << ToString(kind);
    EXPECT_EQ(out.sends, 1u) << ToString(kind);
  }
}

TEST(Execution, EaseioKeepsBranchInvariantUnderFailures) {
  for (uint64_t seed = 1; seed <= 60; ++seed) {
    const RunOutcome out = RunWeatherDsl(apps::RuntimeKind::kEaseio, seed, false);
    ASSERT_TRUE(out.completed);
    EXPECT_EQ(out.stdy + out.alarm, 1) << "seed " << seed;
    EXPECT_EQ(out.sends, 1u) << "seed " << seed;  // Single send: never duplicated
  }
}

TEST(Execution, BaselinesDuplicateSendsUnderFailures) {
  uint64_t duplicated = 0;
  for (uint64_t seed = 1; seed <= 60; ++seed) {
    const RunOutcome out = RunWeatherDsl(apps::RuntimeKind::kAlpaca, seed, false);
    ASSERT_TRUE(out.completed);
    if (out.sends > 1) {
      ++duplicated;
    }
  }
  EXPECT_GT(duplicated, 0u);  // Figure 2a: re-executed sends transmit duplicates
}

}  // namespace
}  // namespace easeio::easec
