// Unit tests for the simulated-device substrate: memory, energy, clock, failure
// schedulers, harvesters, peripherals, DMA engine, and the LEA accelerator.

#include <gtest/gtest.h>

#include "apps/reference.h"
#include "platform/rng.h"
#include "sim/device.h"

namespace easeio::sim {
namespace {

DeviceConfig Config(uint64_t seed = 1) {
  DeviceConfig config;
  config.seed = seed;
  return config;
}

// --- Memory ---------------------------------------------------------------------------

TEST(Memory, ClassifiesAddressSpaces) {
  Memory mem;
  const uint32_t sram = mem.AllocSram("s", 16);
  const uint32_t fram = mem.AllocFram("f", 16);
  EXPECT_EQ(mem.Classify(sram), MemKind::kSram);
  EXPECT_EQ(mem.Classify(fram), MemKind::kFram);
}

TEST(Memory, SramIsVolatileFramPersists) {
  Memory mem;
  const uint32_t sram = mem.AllocSram("s", 4);
  const uint32_t fram = mem.AllocFram("f", 4);
  mem.Write16(sram, 0xAAAA);
  mem.Write16(fram, 0xBBBB);
  mem.OnReboot();
  EXPECT_EQ(mem.Read16(sram), 0);
  EXPECT_EQ(mem.Read16(fram), 0xBBBB);
  EXPECT_EQ(mem.reboot_epoch(), 1u);
}

TEST(Memory, WordAccessorsRoundTrip) {
  Memory mem;
  const uint32_t a = mem.AllocFram("a", 8);
  mem.Write32(a, 0xDEADBEEF);
  EXPECT_EQ(mem.Read32(a), 0xDEADBEEFu);
  EXPECT_EQ(mem.Read16(a), 0xBEEF);
  EXPECT_EQ(mem.Read8(a + 3), 0xDE);
  mem.WriteI16(a + 4, -123);
  EXPECT_EQ(mem.ReadI16(a + 4), -123);
}

TEST(Memory, CopyAndFill) {
  Memory mem;
  const uint32_t a = mem.AllocFram("a", 16);
  const uint32_t b = mem.AllocFram("b", 16);
  mem.Fill(a, 16, 0x5A);
  mem.Copy(b, a, 16);
  EXPECT_EQ(mem.Read8(b + 15), 0x5A);
}

TEST(Memory, OutOfRangeAccessAborts) {
  Memory mem;
  EXPECT_DEATH(mem.Read16(0x10), "out of range");
}

TEST(Memory, ArenaExhaustionAborts) {
  Memory mem(64, 1024);
  mem.AllocSram("a", 60);
  EXPECT_DEATH(mem.AllocSram("b", 60), "exhausted");
}

TEST(Memory, FootprintAccountingByPurpose) {
  Memory mem;
  mem.AllocFram("app", 100, AllocPurpose::kAppData);
  mem.AllocFram("meta", 10, AllocPurpose::kRuntimeMeta);
  mem.AllocFram("buf", 50, AllocPurpose::kPrivBuffer);
  EXPECT_EQ(mem.AllocatedBytes(MemKind::kFram, AllocPurpose::kAppData), 100u);
  EXPECT_EQ(mem.AllocatedBytes(MemKind::kFram, AllocPurpose::kRuntimeMeta), 10u);
  EXPECT_EQ(mem.AllocatedBytes(MemKind::kFram, AllocPurpose::kPrivBuffer), 50u);
  EXPECT_EQ(mem.AllocatedBytes(MemKind::kFram), 160u);
}

// --- Energy ----------------------------------------------------------------------------

TEST(Capacitor, StoresHalfCVSquared) {
  Capacitor cap(1e-3, 3.0, 1.8, 3.6);
  EXPECT_NEAR(cap.StoredJ(), 0.5 * 1e-3 * 3.6 * 3.6, 1e-9);
  EXPECT_NEAR(cap.UsableJ(), 0.5 * 1e-3 * (3.6 * 3.6 - 1.8 * 1.8), 1e-9);
}

TEST(Capacitor, DrawBrownsOutAtThreshold) {
  Capacitor cap(1e-6, 3.0, 1.8, 3.6);
  EXPECT_TRUE(cap.Draw(cap.UsableJ() * 0.5));
  EXPECT_FALSE(cap.BelowOff());
  EXPECT_FALSE(cap.Draw(cap.UsableJ() * 2));
  EXPECT_TRUE(cap.BelowOff());
}

TEST(Capacitor, ChargeClampsAtRail) {
  Capacitor cap(1e-6, 3.0, 1.8, 3.6);
  cap.Draw(cap.UsableJ());
  cap.Charge(1.0);  // absurdly large
  EXPECT_NEAR(cap.voltage(), 3.6, 1e-9);
}

TEST(EnergyMeter, TalliesPerPhase) {
  EnergyMeter meter;
  meter.Add(Phase::kApp, 1e-6);
  meter.Add(Phase::kOverhead, 2e-6);
  meter.Add(Phase::kRedundant, 3e-6);
  EXPECT_NEAR(meter.TotalJ(), 6e-6, 1e-12);
  EXPECT_NEAR(meter.PhaseJ(Phase::kOverhead), 2e-6, 1e-12);
}

// --- Clock / timekeeper -----------------------------------------------------------------

TEST(Clock, TracksOnAndOffTime) {
  SimClock clock;
  clock.AdvanceOn(100);
  clock.AdvanceOff(50);
  EXPECT_EQ(clock.on_us(), 100u);
  EXPECT_EQ(clock.off_us(), 50u);
  EXPECT_EQ(clock.wall_us(), 150u);
}

TEST(Timekeeper, QuantisesWallTime) {
  SimClock clock;
  PersistentTimekeeper tk(clock, 100);
  clock.AdvanceOn(257);
  EXPECT_EQ(tk.NowUs(), 200u);
  clock.AdvanceOff(50);  // survives power failure: counts off-time too
  EXPECT_EQ(tk.NowUs(), 300u);
}

// --- Failure schedulers --------------------------------------------------------------------

TEST(Failure, UniformTimerStaysInBounds) {
  SimClock clock;
  Xorshift64Star rng(7);
  UniformTimerScheduler sched(5000, 20000, 1000, 2000);
  for (int i = 0; i < 200; ++i) {
    sched.OnPowerOn(clock, rng);
    const uint64_t budget = sched.OnTimeBudgetUs(clock);
    EXPECT_GE(budget, 5000u);
    EXPECT_LE(budget, 20000u);
    const uint64_t off = sched.OffTimeUs(rng);
    EXPECT_GE(off, 1000u);
    EXPECT_LE(off, 2000u);
    clock.AdvanceOn(budget);
  }
}

TEST(Failure, ScriptedFiresAtExactInstants) {
  SimClock clock;
  Xorshift64Star rng(1);
  ScriptedScheduler sched({100, 250}, 10);
  Capacitor cap;
  sched.OnPowerOn(clock, rng);
  EXPECT_EQ(sched.OnTimeBudgetUs(clock), 100u);
  clock.AdvanceOn(100);
  EXPECT_TRUE(sched.FailNow(clock, cap));
  sched.OnPowerOn(clock, rng);
  EXPECT_EQ(sched.OnTimeBudgetUs(clock), 150u);
}

TEST(Failure, ScriptedAcceptsUnsortedSchedule) {
  SimClock clock;
  Xorshift64Star rng(1);
  ScriptedScheduler sched({250, 100}, 10);
  Capacitor cap;
  sched.OnPowerOn(clock, rng);
  EXPECT_EQ(sched.size(), 2u);
  EXPECT_EQ(sched.next_index(), 0u);
  EXPECT_EQ(sched.OnTimeBudgetUs(clock), 100u);  // the earlier instant fires first
  clock.AdvanceOn(100);
  EXPECT_TRUE(sched.FailNow(clock, cap));
  sched.OnPowerOn(clock, rng);
  EXPECT_EQ(sched.next_index(), 1u);
  EXPECT_EQ(sched.OnTimeBudgetUs(clock), 150u);
}

TEST(Failure, ScriptedRejectsDuplicateInstants) {
  EXPECT_DEATH(ScriptedScheduler({100, 100}, 10), "distinct");
}

TEST(Failure, ScriptedFailureAtTimeZeroFiresOnce) {
  ScriptedScheduler sched({0}, 10);
  Device dev(Config(), sched);
  dev.Begin();
  EXPECT_THROW(dev.Cpu(1), PowerFailure);  // dies before any work lands
  EXPECT_EQ(dev.clock().on_us(), 0u);
  dev.Reboot();
  EXPECT_EQ(sched.next_index(), 1u);  // the t=0 instant is consumed, not re-armed
  dev.Cpu(1000);
  EXPECT_EQ(dev.clock().on_us(), 1000u);
}

TEST(Failure, ScriptedTwoFailuresInsideOneOpBudget) {
  ScriptedScheduler sched({500, 501}, 10);
  Device dev(Config(), sched);
  dev.Begin();
  EXPECT_THROW(dev.Cpu(1000), PowerFailure);
  EXPECT_EQ(dev.clock().on_us(), 500u);
  dev.Reboot();
  EXPECT_THROW(dev.Cpu(1000), PowerFailure);  // the second instant is 1 us later
  EXPECT_EQ(dev.clock().on_us(), 501u);
  dev.Reboot();
  EXPECT_EQ(sched.next_index(), 2u);
  dev.Cpu(1000);  // schedule exhausted: runs to completion
}

TEST(Failure, CapacitorSchedulerBudgetIsQuantum) {
  SimClock clock;
  CapacitorScheduler sched(75);
  EXPECT_EQ(sched.OnTimeBudgetUs(clock), 75u);
  clock.AdvanceOn(1000);
  EXPECT_EQ(sched.OnTimeBudgetUs(clock), 75u);  // quantum is time-invariant
}

TEST(Failure, CapacitorSchedulerRejectsZeroQuantum) {
  EXPECT_DEATH(CapacitorScheduler(0), "positive");
}

TEST(Failure, CapacitorSchedulerFailsOnlyBelowOff) {
  SimClock clock;
  CapacitorScheduler sched;
  Capacitor cap(1e-6, 3.0, 1.8, 3.6);
  EXPECT_FALSE(sched.FailNow(clock, cap));
  cap.Draw(cap.UsableJ() * 2);  // push the voltage below v_off
  EXPECT_TRUE(cap.BelowOff());
  EXPECT_TRUE(sched.FailNow(clock, cap));
}

TEST(Failure, DeviceThrowsAtScriptedInstant) {
  ScriptedScheduler sched({500}, 10);
  Device dev(Config(), sched);
  dev.Begin();
  dev.Cpu(400);
  EXPECT_THROW(dev.Cpu(200), PowerFailure);
  // The clock stopped exactly at the failure instant, not past it.
  EXPECT_EQ(dev.clock().on_us(), 500u);
}

// --- Harvesters ------------------------------------------------------------------------------

TEST(Harvester, RfFollowsInverseSquare) {
  RfHarvester near(52.0, 1e-3, 52.0);
  RfHarvester far(104.0, 1e-3, 52.0);
  EXPECT_NEAR(near.PowerW(0), 1e-3, 1e-12);
  EXPECT_NEAR(far.PowerW(0), 0.25e-3, 1e-12);
}

TEST(Harvester, JitterIsDeterministicAndBounded) {
  RfHarvester h(52.0, 1e-3, 52.0, 0.3, /*seed=*/42);
  RfHarvester same(52.0, 1e-3, 52.0, 0.3, /*seed=*/42);
  for (uint64_t t = 0; t < 100'000; t += 7'000) {
    const double p = h.PowerW(t);
    EXPECT_DOUBLE_EQ(p, same.PowerW(t));
    EXPECT_GE(p, 0.7e-3 - 1e-12);
    EXPECT_LE(p, 1.3e-3 + 1e-12);
  }
}

TEST(Harvester, TraceSampleAndHold) {
  TraceHarvester trace({{0, 1e-3}, {100, 2e-3}, {200, 0.5e-3}});
  EXPECT_DOUBLE_EQ(trace.PowerW(50), 1e-3);
  EXPECT_DOUBLE_EQ(trace.PowerW(150), 2e-3);
  EXPECT_DOUBLE_EQ(trace.PowerW(5000), 0.5e-3);
}

// --- Device charging ---------------------------------------------------------------------------

TEST(Device, PhaseAttributionFollowsScope) {
  NeverFailScheduler never;
  Device dev(Config(), never);
  dev.Begin();
  dev.Cpu(100);
  {
    Device::PhaseScope scope(dev, Phase::kOverhead);
    dev.Cpu(40);
  }
  dev.Cpu(10);
  EXPECT_DOUBLE_EQ(dev.stats().attempt_us[0], 110.0);
  EXPECT_DOUBLE_EQ(dev.stats().attempt_us[1], 40.0);
}

TEST(Device, CommittedAndFailedAttemptsFoldDifferently) {
  ScriptedScheduler sched({1000}, 100);
  Device dev(Config(), sched);
  dev.Begin();
  dev.Cpu(500);
  dev.FoldAttemptCommitted();
  EXPECT_THROW(dev.Cpu(1000), PowerFailure);
  dev.Reboot();
  EXPECT_DOUBLE_EQ(dev.stats().app_us, 500.0);
  EXPECT_DOUBLE_EQ(dev.stats().wasted_us, 500.0);  // the second attempt died
  EXPECT_EQ(dev.stats().power_failures, 1u);
}

TEST(Device, MemoryAccessCostsDifferByKind) {
  NeverFailScheduler never;
  Device dev(Config(), never);
  dev.Begin();
  const uint32_t sram = dev.mem().AllocSram("s", 4);
  const uint32_t fram = dev.mem().AllocFram("f", 4);
  const uint64_t t0 = dev.clock().on_us();
  dev.StoreWord(sram, 1);
  const uint64_t sram_cost = dev.clock().on_us() - t0;
  const uint64_t t1 = dev.clock().on_us();
  dev.StoreWord(fram, 1);
  const uint64_t fram_cost = dev.clock().on_us() - t1;
  EXPECT_LT(sram_cost, fram_cost);
}

// --- Peripherals -----------------------------------------------------------------------------

TEST(Peripherals, SensorValuesDriftOverTime) {
  NeverFailScheduler never;
  Device dev(Config(3), never);
  dev.Begin();
  const int16_t a = dev.temp().Read(dev);
  // Let significant time pass: the underlying signal moves.
  for (int i = 0; i < 100; ++i) {
    dev.Cpu(10'000);
  }
  const int16_t b = dev.temp().Read(dev);
  EXPECT_NE(a, b);
}

TEST(Peripherals, RadioLogsCompletedSendsOnly) {
  ScriptedScheduler sched({100}, 10);
  Device dev(Config(), sched);
  dev.Begin();
  const uint32_t buf = dev.mem().AllocFram("b", 8);
  EXPECT_THROW(dev.radio().Send(dev, buf, 8), PowerFailure);  // dies mid-wake
  EXPECT_EQ(dev.radio().sends(), 0u);
  dev.Reboot();
  dev.radio().Send(dev, buf, 8);
  EXPECT_EQ(dev.radio().sends(), 1u);
}

TEST(Peripherals, CameraRecaptureDiffers) {
  NeverFailScheduler never;
  Device dev(Config(5), never);
  dev.Begin();
  const uint32_t buf = dev.mem().AllocFram("img", 64);
  dev.camera().Capture(dev, buf, 64);
  const uint16_t first = dev.mem().Read16(buf);
  dev.Cpu(50'000);
  dev.camera().Capture(dev, buf, 64);
  EXPECT_NE(dev.mem().Read16(buf), first);
}

// --- DMA engine ---------------------------------------------------------------------------------

TEST(Dma, AbortedTransferMovesNoBytes) {
  ScriptedScheduler sched({100}, 10);
  Device dev(Config(), sched);
  dev.Begin();
  const uint32_t src = dev.mem().AllocFram("src", 256);
  const uint32_t dst = dev.mem().AllocFram("dst", 256);
  dev.mem().Fill(src, 256, 0x77);
  EXPECT_THROW(dev.dma().Copy(dev, dst, src, 256), PowerFailure);
  EXPECT_EQ(dev.mem().Read8(dst), 0);  // nothing landed
  EXPECT_EQ(dev.dma().transfers(), 0u);
}

TEST(Dma, CompletedTransferReportsKinds) {
  NeverFailScheduler never;
  Device dev(Config(), never);
  dev.Begin();
  const uint32_t src = dev.mem().AllocFram("src", 32);
  const uint32_t dst = dev.mem().AllocSram("dst", 32);
  const auto info = dev.dma().Copy(dev, dst, src, 32);
  EXPECT_EQ(info.src_kind, MemKind::kFram);
  EXPECT_EQ(info.dst_kind, MemKind::kSram);
  EXPECT_EQ(dev.dma().bytes_moved(), 32u);
}

// --- LEA -----------------------------------------------------------------------------------------

TEST(Lea, FirMatchesReference) {
  NeverFailScheduler never;
  Device dev(Config(), never);
  dev.Begin();
  constexpr uint32_t kOut = 16, kTaps = 4, kIn = kOut + kTaps - 1;
  const uint32_t src = dev.mem().AllocSram("src", kIn * 2);
  const uint32_t coef = dev.mem().AllocSram("coef", kTaps * 2);
  const uint32_t dst = dev.mem().AllocSram("dst", kOut * 2);
  std::vector<int16_t> in(kIn), c(kTaps);
  for (uint32_t i = 0; i < kIn; ++i) {
    in[i] = static_cast<int16_t>(i * 100 - 500);
    dev.mem().WriteI16(src + 2 * i, in[i]);
  }
  for (uint32_t i = 0; i < kTaps; ++i) {
    c[i] = static_cast<int16_t>(4000 - i * 700);
    dev.mem().WriteI16(coef + 2 * i, c[i]);
  }
  dev.lea().Fir(dev, src, coef, dst, kOut, kTaps);
  const auto expect = apps::ref::Fir(in, c, kOut);
  for (uint32_t i = 0; i < kOut; ++i) {
    EXPECT_EQ(dev.mem().ReadI16(dst + 2 * i), expect[i]) << i;
  }
}

TEST(Lea, RejectsFramOperands) {
  NeverFailScheduler never;
  Device dev(Config(), never);
  dev.Begin();
  const uint32_t fram = dev.mem().AllocFram("f", 64);
  const uint32_t sram = dev.mem().AllocSram("s", 64);
  EXPECT_DEATH(dev.lea().Fir(dev, fram, sram, sram, 8, 4), "SRAM");
}

TEST(Lea, ConvAndFcMatchReference) {
  NeverFailScheduler never;
  Device dev(Config(), never);
  dev.Begin();
  constexpr uint32_t kH = 6, kW = 6, kK = 3;
  const uint32_t img = dev.mem().AllocSram("img", kH * kW * 2);
  const uint32_t ker = dev.mem().AllocSram("ker", kK * kK * 2);
  const uint32_t out = dev.mem().AllocSram("out", 16 * 2);
  std::vector<int16_t> image(kH * kW), kernel(kK * kK);
  for (uint32_t i = 0; i < image.size(); ++i) {
    image[i] = static_cast<int16_t>((i * 37) % 251 - 120);
    dev.mem().WriteI16(img + 2 * i, image[i]);
  }
  for (uint32_t i = 0; i < kernel.size(); ++i) {
    kernel[i] = static_cast<int16_t>(900 - 200 * static_cast<int32_t>(i));
    dev.mem().WriteI16(ker + 2 * i, kernel[i]);
  }
  dev.lea().Conv2dValid(dev, img, ker, out, kH, kW, kK);
  const auto expect = apps::ref::Conv2dValid(image, kernel, kH, kW, kK);
  for (uint32_t i = 0; i < expect.size(); ++i) {
    EXPECT_EQ(dev.mem().ReadI16(out + 2 * i), expect[i]) << i;
  }

  dev.lea().Relu(dev, out, static_cast<uint32_t>(expect.size()));
  const auto relu = apps::ref::Relu(expect);
  for (uint32_t i = 0; i < relu.size(); ++i) {
    EXPECT_EQ(dev.mem().ReadI16(out + 2 * i), relu[i]) << i;
  }
}

// --- RNG -------------------------------------------------------------------------------------------

TEST(Rng, DeterministicAndSeedSensitive) {
  Xorshift64Star a(1), b(1), c(2);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(Rng, RangesAreInclusive) {
  Xorshift64Star rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const uint64_t v = rng.NextInRange(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    saw_lo |= v == 3;
    saw_hi |= v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

}  // namespace
}  // namespace easeio::sim
